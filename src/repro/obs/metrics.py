"""A process-wide metrics registry: counters, gauges and histogram timers.

Instruments are created lazily and keyed by ``name`` plus sorted labels
(``validation.rule_ms{rule=UPCC-P01}``), so instrumented code never has to
pre-register anything::

    from repro.obs.metrics import counter, histogram

    counter("xsdgen.schemas_generated").inc()
    with histogram("validation.rule_ms", rule=code).time():
        run_rule()

The registry is thread-safe, always on (increments are two dict lookups
and an integer add -- cheap enough to leave enabled permanently), and
exposes :meth:`MetricsRegistry.snapshot` / ``render_text`` /
``render_json`` for reporting.  Snapshots are deterministic: keys are
sorted, histogram aggregates are rounded.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from typing import Any, Iterator


def _metric_key(name: str, labels: dict[str, Any]) -> str:
    if not labels:
        return name
    if len(labels) == 1:
        [(key, value)] = labels.items()
        return f"{name}{{{key}={value}}}"
    rendered = ",".join(f"{key}={labels[key]}" for key in sorted(labels))
    return f"{name}{{{rendered}}}"


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str, lock: threading.Lock) -> None:
        self.name = name
        self.value = 0
        self._lock = lock

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (default 1)."""
        with self._lock:
            self.value += amount


class Gauge:
    """A value that can go up and down (queue depth, memo size, ...)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str, lock: threading.Lock) -> None:
        self.name = name
        self.value = 0.0
        self._lock = lock

    def set(self, value: float) -> None:
        """Overwrite the current value."""
        with self._lock:
            self.value = value

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (default 1)."""
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Subtract ``amount`` (default 1)."""
        self.inc(-amount)


class Histogram:
    """Aggregates observations: count, sum, min, max (milliseconds for timers)."""

    __slots__ = ("name", "count", "total", "min", "max", "_lock")

    def __init__(self, name: str, lock: threading.Lock) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None
        self._lock = lock

    def observe(self, value: float) -> None:
        """Record one observation."""
        with self._lock:
            self.count += 1
            self.total += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value

    @contextmanager
    def time(self) -> Iterator[None]:
        """Time the enclosed block and observe its wall time in ms."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.observe((time.perf_counter() - start) * 1000.0)

    @property
    def mean(self) -> float:
        """Arithmetic mean of all observations (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> dict[str, float | int]:
        """Deterministic aggregate view of the distribution."""
        return {
            "count": self.count,
            "sum": round(self.total, 3),
            "min": round(self.min, 3) if self.min is not None else 0.0,
            "max": round(self.max, 3) if self.max is not None else 0.0,
            "mean": round(self.mean, 3),
        }


class MetricsRegistry:
    """Lazily creates and holds every instrument, keyed by name+labels."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- instrument accessors -----------------------------------------------------

    def counter(self, name: str, **labels: Any) -> Counter:
        """The counter for ``name`` + labels, created on first use."""
        key = _metric_key(name, labels)
        instrument = self._counters.get(key)
        if instrument is None:
            with self._lock:
                instrument = self._counters.setdefault(key, Counter(key, self._lock))
        return instrument

    def gauge(self, name: str, **labels: Any) -> Gauge:
        """The gauge for ``name`` + labels, created on first use."""
        key = _metric_key(name, labels)
        instrument = self._gauges.get(key)
        if instrument is None:
            with self._lock:
                instrument = self._gauges.setdefault(key, Gauge(key, self._lock))
        return instrument

    def histogram(self, name: str, **labels: Any) -> Histogram:
        """The histogram for ``name`` + labels, created on first use."""
        key = _metric_key(name, labels)
        instrument = self._histograms.get(key)
        if instrument is None:
            with self._lock:
                instrument = self._histograms.setdefault(key, Histogram(key, self._lock))
        return instrument

    # -- reporting ----------------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """All instruments as one sorted, JSON-ready mapping.

        Counters map to ints, gauges to floats, histograms to their
        aggregate dicts.  Calling twice without interleaved updates yields
        an identical object.
        """
        with self._lock:
            counters = {key: c.value for key, c in self._counters.items()}
            gauges = {key: g.value for key, g in self._gauges.items()}
            histograms = {key: h.to_dict() for key, h in self._histograms.items()}
        merged: dict[str, Any] = {}
        merged.update(counters)
        merged.update(gauges)
        merged.update(histograms)
        return {key: merged[key] for key in sorted(merged)}

    def render_text(self) -> str:
        """The snapshot as aligned ``name value`` lines for terminals."""
        snapshot = self.snapshot()
        if not snapshot:
            return "(no metrics recorded)"
        width = max(len(key) for key in snapshot)
        lines = []
        for key, value in snapshot.items():
            if isinstance(value, dict):
                rendered = (
                    f"count={value['count']} sum={value['sum']}ms "
                    f"min={value['min']}ms max={value['max']}ms mean={value['mean']}ms"
                )
            else:
                rendered = str(value)
            lines.append(f"{key.ljust(width)}  {rendered}")
        return "\n".join(lines)

    def render_json(self, indent: int | None = 2) -> str:
        """The snapshot as a JSON document."""
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def reset(self) -> None:
        """Drop every instrument (tests and fresh CLI runs)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


#: The process-global registry used by all pipeline instrumentation.
_global_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-global metrics registry."""
    return _global_registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Replace the process-global registry; returns the previous one."""
    global _global_registry
    previous = _global_registry
    _global_registry = registry
    return previous


def counter(name: str, **labels: Any) -> Counter:
    """Shortcut: a counter on the global registry."""
    return _global_registry.counter(name, **labels)


def gauge(name: str, **labels: Any) -> Gauge:
    """Shortcut: a gauge on the global registry."""
    return _global_registry.gauge(name, **labels)


def histogram(name: str, **labels: Any) -> Histogram:
    """Shortcut: a histogram on the global registry."""
    return _global_registry.histogram(name, **labels)
