"""Background process-runtime sampling: RSS, GC, threads, fds, uptime.

:class:`RuntimeCollector` runs a daemon thread that periodically publishes
process health as gauges on the metrics registry, so one ``GET /metrics``
scrape carries both request telemetry *and* the runtime context needed to
interpret it (is p99 climbing because RSS is, is the box leaking fds?):

* ``runtime.rss_bytes`` -- resident set size (absent when unmeasurable),
* ``runtime.gc_collections{gen=0|1|2}`` -- collections per GC generation,
* ``runtime.threads`` -- live Python threads,
* ``runtime.open_fds`` -- open file descriptors (absent when unmeasurable),
* ``runtime.uptime_s`` -- seconds since the collector started.

Everything is stdlib-only (``resource``/``gc``/``threading``/``os``) and
degrades gracefully: on platforms without ``/proc`` the fd count and RSS
are simply *not published* (an absent gauge reads as "unmeasurable here";
a ``-1`` or ``0`` sample would poison dashboards and rate rules).  A
single :func:`sample_runtime` call does one synchronous sweep -- used by
the collector loop, by tests, and by callers that want a sample without
a thread.

The collector also accepts ``hooks`` -- callables run after each sweep on
the same cadence and thread.  The serve daemon registers its SLO
engine's ``tick`` there, so burn-rate evaluation rides the existing
sampler instead of needing a second timer thread.
"""

from __future__ import annotations

import gc
import os
import sys
import threading
import time
from typing import Any, Callable, Iterable

from repro.obs import metrics as metrics_mod
from repro.obs.logging_bridge import get_logger
from repro.obs.metrics import MetricsRegistry

__all__ = ["RuntimeCollector", "rss_bytes", "open_fds", "sample_runtime"]

_log = get_logger("repro.obs.runtime")

#: Consecutive failures after which :class:`RuntimeCollector` stops
#: running a hook.  A single transient error (a disk-full blip in the
#: SLO engine's alert-log write, say) must not silently disable SLO
#: evaluation for the daemon's lifetime.
HOOK_FAILURE_LIMIT = 3


def rss_bytes() -> int:
    """Current resident set size in bytes (best effort, 0 if unknowable).

    Prefers ``/proc/self/status`` ``VmRSS`` (current RSS, Linux); falls
    back to ``resource.getrusage`` ``ru_maxrss`` (*peak* RSS -- KiB on
    Linux, bytes on macOS) elsewhere.
    """
    try:
        with open("/proc/self/status", "r", encoding="ascii") as handle:
            for line in handle:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1]) * 1024
    except (OSError, ValueError, IndexError):
        pass
    try:
        import resource

        peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        return peak if sys.platform == "darwin" else peak * 1024
    except (ImportError, OSError):
        return 0


def open_fds() -> int:
    """Count of open file descriptors, or ``-1`` where not measurable."""
    try:
        return len(os.listdir("/proc/self/fd"))
    except OSError:
        return -1


def sample_runtime(
    registry: MetricsRegistry | None = None, *, started_at: float | None = None
) -> dict[str, Any]:
    """One synchronous runtime sweep published as gauges; returns the values.

    ``started_at`` (a ``time.monotonic`` instant) anchors
    ``runtime.uptime_s``; when omitted the uptime gauge is left alone.
    """
    target = registry if registry is not None else metrics_mod.get_registry()
    sample: dict[str, Any] = {
        "rss_bytes": rss_bytes(),
        "threads": threading.active_count(),
        "open_fds": open_fds(),
        "gc_collections": [stat.get("collections", 0) for stat in gc.get_stats()],
    }
    # Unmeasurable values stay absent from the registry: a gauge that was
    # never published is honest, a published 0/-1 looks like data.
    if sample["rss_bytes"] > 0:
        target.gauge("runtime.rss_bytes").set(sample["rss_bytes"])
    target.gauge("runtime.threads").set(sample["threads"])
    if sample["open_fds"] >= 0:
        target.gauge("runtime.open_fds").set(sample["open_fds"])
    for gen, collections in enumerate(sample["gc_collections"]):
        target.gauge("runtime.gc_collections", gen=gen).set(collections)
    if started_at is not None:
        sample["uptime_s"] = round(time.monotonic() - started_at, 3)
        target.gauge("runtime.uptime_s").set(sample["uptime_s"])
    return sample


class RuntimeCollector:
    """Daemon thread publishing :func:`sample_runtime` every ``interval_s``.

    Start/stop are idempotent; ``stop()`` wakes the sampler immediately
    (it waits on an event, not a sleep) and joins the thread, so daemon
    shutdown never blocks on a pending interval.  One final sample runs
    on ``start()`` synchronously, so gauges exist before the first scrape
    even with a long interval.
    """

    def __init__(
        self,
        interval_s: float = 5.0,
        registry: MetricsRegistry | None = None,
        hooks: Iterable[Callable[[], Any]] | None = None,
    ) -> None:
        self.interval_s = max(0.05, float(interval_s))
        self._registry = registry
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._started_at: float | None = None
        self.samples = 0
        #: Callables run after each sweep (SLO engine tick and the like).
        #: A raising hook is logged and kept; only
        #: :data:`HOOK_FAILURE_LIMIT` *consecutive* failures disable it,
        #: so a transient error never kills the sampler or the hook.
        self.hooks: list[Callable[[], Any]] = list(hooks or [])
        self._hook_failures: dict[int, int] = {}

    def add_hook(self, hook: Callable[[], Any]) -> None:
        """Run ``hook`` after every future sample (collector cadence)."""
        self.hooks.append(hook)

    @property
    def running(self) -> bool:
        """True while the sampler thread is alive."""
        return self._thread is not None and self._thread.is_alive()

    def sample(self) -> dict[str, Any]:
        """Take one sample now (also what the background loop calls)."""
        values = sample_runtime(self._registry, started_at=self._started_at)
        self.samples += 1
        for hook in list(self.hooks):
            try:
                hook()
            except Exception as error:  # noqa: BLE001 - a bad hook must not kill sampling
                failures = self._hook_failures.get(id(hook), 0) + 1
                self._hook_failures[id(hook)] = failures
                _log.warning(
                    "runtime collector hook %r failed (%d/%d): %s",
                    hook, failures, HOOK_FAILURE_LIMIT, error,
                )
                if failures >= HOOK_FAILURE_LIMIT:
                    _log.warning(
                        "disabling runtime collector hook %r after %d "
                        "consecutive failures", hook, failures,
                    )
                    self._hook_failures.pop(id(hook), None)
                    try:
                        self.hooks.remove(hook)
                    except ValueError:
                        pass
            else:
                self._hook_failures.pop(id(hook), None)
        return values

    def start(self) -> "RuntimeCollector":
        """Begin sampling; returns self.  No-op when already running."""
        if self.running:
            return self
        self._stop.clear()
        self._started_at = time.monotonic()
        self.sample()  # gauges exist before the first interval elapses
        self._thread = threading.Thread(
            target=self._loop, name="upcc-runtime-collector", daemon=True
        )
        self._thread.start()
        return self

    def _loop(self) -> None:
        while not self._stop.wait(self.interval_s):
            self.sample()

    def stop(self) -> None:
        """Stop sampling and join the thread.  No-op when not running."""
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "RuntimeCollector":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
