"""Standard-logging interop for the obs layer.

The pipeline modules log through ordinary :mod:`logging` loggers
(``repro.xsdgen``, ``repro.validation``, ``repro.xmi``), so library users
can attach their own handlers with zero repro-specific code.  By default
the ``repro`` logger carries a :class:`logging.NullHandler` and stays
silent; :func:`wire_logging` additionally forwards records into the
tracer's sinks so ``--trace`` style runs interleave log lines with spans.
"""

from __future__ import annotations

import logging

from repro.obs.trace import Tracer, get_tracer

#: The loggers the pipeline writes to.
PIPELINE_LOGGERS = (
    "repro.xsdgen",
    "repro.validation",
    "repro.xmi",
    "repro.binding",
)

_ROOT_LOGGER = "repro"


def get_logger(name: str) -> logging.Logger:
    """A ``repro.*`` logger, guaranteed quiet-by-default.

    Ensures the package root logger has a :class:`logging.NullHandler`
    so importing the library never prints "no handler" warnings.
    """
    root = logging.getLogger(_ROOT_LOGGER)
    if not any(isinstance(handler, logging.NullHandler) for handler in root.handlers):
        root.addHandler(logging.NullHandler())
    return logging.getLogger(name)


class TraceSinkHandler(logging.Handler):
    """Forwards log records to the sinks of a :class:`Tracer`."""

    def __init__(self, tracer: Tracer | None = None, level: int = logging.INFO) -> None:
        super().__init__(level)
        self._tracer = tracer

    @property
    def tracer(self) -> Tracer:
        return self._tracer if self._tracer is not None else get_tracer()

    def emit(self, record: logging.LogRecord) -> None:
        try:
            self.tracer.emit_log(record.name, record.levelname, record.getMessage())
        except Exception:  # pragma: no cover - logging must never raise
            self.handleError(record)


def wire_logging(
    tracer: Tracer | None = None,
    level: int = logging.INFO,
) -> TraceSinkHandler:
    """Route ``repro.*`` log records into the tracer's sinks.

    Attaches one :class:`TraceSinkHandler` to the package root logger
    (replacing any previously wired one) and lowers the logger level so
    records at ``level`` and above flow.  Returns the handler.
    """
    unwire_logging()
    handler = TraceSinkHandler(tracer, level)
    root = get_logger(_ROOT_LOGGER)
    root.addHandler(handler)
    if root.level == logging.NOTSET or root.level > level:
        root.setLevel(level)
    return handler


def unwire_logging() -> None:
    """Detach every :class:`TraceSinkHandler` from the package root logger."""
    root = logging.getLogger(_ROOT_LOGGER)
    for handler in list(root.handlers):
        if isinstance(handler, TraceSinkHandler):
            root.removeHandler(handler)
