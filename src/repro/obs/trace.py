"""Hierarchical tracing spans for the generation/validation pipeline.

A :class:`Span` records one timed region of pipeline work -- wall time,
outcome (ok/error) and free-form key/value attributes -- and nests under
whatever span was active when it started, so one generation run yields a
tree mirroring the library dependency graph the generator walked.  Spans
are collected by a thread-safe :class:`Tracer` with pluggable sinks:

* :class:`RingBufferSink` -- bounded in-memory store of finished root
  spans, renderable as an indented tree,
* :class:`LogfmtSink` -- one logfmt line per finished span on a stream
  (stderr by default),
* :class:`JsonLinesSink` -- one JSON object per finished span appended to
  a file or stream.

The module-level :func:`span` helper reads the process-global tracer and
costs a single attribute check when tracing is disabled, keeping the
instrumented hot paths effectively free by default.
"""

from __future__ import annotations

import contextvars
import itertools
import json
import sys
import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator, TextIO

#: Outcome values a span can end with.
STATUS_OK = "ok"
STATUS_ERROR = "error"

#: Process-wide span id source.  ``next()`` on :func:`itertools.count` is
#: atomic in CPython, so ids are unique across threads without a lock.
_span_ids = itertools.count(1)


def _next_span_id() -> str:
    return f"s{next(_span_ids)}"


@dataclass
class Span:
    """One timed, attributed region of work, nested under a parent span.

    ``span_id`` is unique for the process lifetime -- span *names* repeat
    freely (every library build is an ``xsdgen.library`` span), so sinks
    that flatten the tree emit ``id``/``parent_id`` to keep the tree
    losslessly reconstructable.
    """

    name: str
    attributes: dict[str, Any] = field(default_factory=dict)
    started_at: float = 0.0
    ended_at: float | None = None
    status: str = STATUS_OK
    error: str | None = None
    children: list["Span"] = field(default_factory=list)
    parent: "Span | None" = field(default=None, repr=False, compare=False)
    span_id: str = field(default_factory=_next_span_id, compare=False)
    #: CPU nanoseconds (``time.thread_time_ns`` delta) the opening thread
    #: spent inside the span.  Valid because a span context manager enters
    #: and exits on one thread; ``None`` while the span is still open.
    cpu_ns: int | None = field(default=None, compare=False)

    @property
    def duration_ms(self) -> float:
        """Wall time in milliseconds (0.0 while the span is still open)."""
        if self.ended_at is None:
            return 0.0
        return (self.ended_at - self.started_at) * 1000.0

    @property
    def cpu_ms(self) -> float:
        """Thread CPU time in milliseconds (0.0 while the span is open).

        Wall time counts scheduler waits and blocking I/O; CPU time only
        counts cycles this thread actually burned, so ``duration_ms -
        cpu_ms`` exposes time spent waiting (lock contention, disk, the
        GIL) — the quantity profiles need to tell "slow code" from
        "starved code".
        """
        if self.cpu_ns is None:
            return 0.0
        return self.cpu_ns / 1e6

    @property
    def finished(self) -> bool:
        """True once the span has ended."""
        return self.ended_at is not None

    def set(self, **attributes: Any) -> "Span":
        """Attach (or overwrite) key/value attributes; returns self."""
        self.attributes.update(attributes)
        return self

    def walk(self) -> Iterator[tuple["Span", int]]:
        """Yield ``(span, depth)`` pairs, pre-order, starting at self."""
        stack: list[tuple[Span, int]] = [(self, 0)]
        while stack:
            span_, depth = stack.pop()
            yield span_, depth
            for child in reversed(span_.children):
                stack.append((child, depth + 1))

    def find(self, name: str) -> list["Span"]:
        """All descendant spans (self included) with the given name."""
        return [s for s, _ in self.walk() if s.name == name]

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready representation (children inlined, parent omitted)."""
        data: dict[str, Any] = {
            "name": self.name,
            "duration_ms": round(self.duration_ms, 3),
            "cpu_ms": round(self.cpu_ms, 3),
            "status": self.status,
        }
        if self.attributes:
            data["attributes"] = dict(self.attributes)
        if self.error is not None:
            data["error"] = self.error
        if self.children:
            data["children"] = [child.to_dict() for child in self.children]
        return data


class _NoopSpan:
    """Stand-in yielded while tracing is disabled; absorbs attribute writes."""

    __slots__ = ()

    def set(self, **attributes: Any) -> "_NoopSpan":
        return self


class _NoopSpanContext:
    """Reusable, re-entrant context manager yielding the no-op span."""

    __slots__ = ()

    def __enter__(self) -> _NoopSpan:
        return _NOOP_SPAN

    def __exit__(self, *exc_info: object) -> bool:
        return False


_NOOP_SPAN = _NoopSpan()
_NOOP_CONTEXT = _NoopSpanContext()


class SpanSink:
    """Base class for span/log consumers attached to a :class:`Tracer`."""

    def on_span_end(self, span: Span) -> None:
        """Called once per span, when it finishes (children before parents)."""

    def on_log(self, logger_name: str, level: str, message: str) -> None:
        """Called for log records routed through the obs logging bridge."""

    def on_provenance(self, record: dict[str, Any]) -> None:
        """Called per provenance record by ``ProvenanceIndex.export``."""


class RingBufferSink(SpanSink):
    """Keeps the last ``capacity`` finished *root* spans in memory.

    Children stay reachable through their root, so the buffer holds whole
    trees; :meth:`render_tree` formats them for human consumption.
    """

    def __init__(self, capacity: int = 1024) -> None:
        self.capacity = capacity
        self.roots: deque[Span] = deque(maxlen=capacity)

    def on_span_end(self, span: Span) -> None:
        if span.parent is None:
            self.roots.append(span)

    def spans(self) -> list[Span]:
        """Every buffered span, roots first within each tree."""
        collected: list[Span] = []
        for root in self.roots:
            collected.extend(s for s, _ in root.walk())
        return collected

    def render_tree(self) -> str:
        """The buffered span trees as indented text, one line per span."""
        lines: list[str] = []
        for root in self.roots:
            for span_, depth in root.walk():
                lines.append("  " * depth + _span_summary(span_))
        return "\n".join(lines)

    def clear(self) -> None:
        """Drop all buffered spans."""
        self.roots.clear()


def _span_summary(span: Span) -> str:
    parts = [span.name, f"{span.duration_ms:.2f}ms", span.status]
    parts.extend(f"{key}={value}" for key, value in span.attributes.items())
    if span.error:
        parts.append(f"error={span.error!r}")
    return " ".join(parts)


def _logfmt_value(value: Any) -> str:
    text = str(value)
    if " " in text or '"' in text or "=" in text or not text:
        return json.dumps(text)
    return text


def _logfmt_line(pairs: list[tuple[str, Any]]) -> str:
    return " ".join(f"{key}={_logfmt_value(value)}" for key, value in pairs)


class LogfmtSink(SpanSink):
    """Writes one logfmt line per finished span (and per log record)."""

    def __init__(self, stream: TextIO | None = None) -> None:
        self._stream = stream

    @property
    def stream(self) -> TextIO:
        return self._stream if self._stream is not None else sys.stderr

    def on_span_end(self, span: Span) -> None:
        pairs: list[tuple[str, Any]] = [
            ("span", span.name),
            ("dur_ms", f"{span.duration_ms:.3f}"),
            ("cpu_ms", f"{span.cpu_ms:.3f}"),
            ("status", span.status),
        ]
        pairs.extend(span.attributes.items())
        if span.error:
            pairs.append(("error", span.error))
        self.stream.write(_logfmt_line(pairs) + "\n")

    def on_log(self, logger_name: str, level: str, message: str) -> None:
        pairs = [("log", logger_name), ("level", level), ("msg", message)]
        self.stream.write(_logfmt_line(pairs) + "\n")

    def on_provenance(self, record: dict[str, Any]) -> None:
        pairs = [("provenance", record.get("target_path", ""))]
        pairs.extend((key, value) for key, value in sorted(record.items()) if key != "target_path")
        self.stream.write(_logfmt_line(pairs) + "\n")


class JsonLinesSink(SpanSink):
    """Appends one JSON object per finished span to a file or stream."""

    def __init__(self, target: str | Path | TextIO) -> None:
        if isinstance(target, (str, Path)):
            self.path: Path | None = Path(target)
            self._stream: TextIO | None = None
        else:
            self.path = None
            self._stream = target
        self._lock = threading.Lock()

    def _write(self, payload: dict[str, Any]) -> None:
        line = json.dumps(payload, sort_keys=True)
        with self._lock:
            if self._stream is not None:
                self._stream.write(line + "\n")
            else:
                assert self.path is not None
                with self.path.open("a", encoding="utf-8") as handle:
                    handle.write(line + "\n")

    def on_span_end(self, span: Span) -> None:
        payload = span.to_dict()
        payload.pop("children", None)  # one record per span; nesting via parent
        payload["id"] = span.span_id
        payload["parent_id"] = span.parent.span_id if span.parent is not None else None
        # The parent *name* stays for human grepping; names are ambiguous
        # (many spans share one), so tree reconstruction uses the ids.
        payload["parent"] = span.parent.name if span.parent is not None else None
        self._write(payload)

    def on_provenance(self, record: dict[str, Any]) -> None:
        """Append one provenance record (see ``ProvenanceIndex.export``)."""
        self._write({"provenance": record})

    def on_log(self, logger_name: str, level: str, message: str) -> None:
        self._write({"log": logger_name, "level": level, "msg": message})


class Tracer:
    """Thread-safe span collector with pluggable sinks.

    The active span is tracked per-context via :mod:`contextvars`, so
    nesting is correct across threads (and coroutines) without locking on
    the hot path; the lock only guards sink fan-out and sink mutation.
    """

    def __init__(self, enabled: bool = True, sinks: list[SpanSink] | None = None) -> None:
        self.enabled = enabled
        self._sinks: list[SpanSink] = list(sinks or [])
        self._lock = threading.Lock()
        self._current: contextvars.ContextVar[Span | None] = contextvars.ContextVar(
            "repro_obs_current_span", default=None
        )

    # -- sinks -------------------------------------------------------------------

    @property
    def sinks(self) -> list[SpanSink]:
        """The attached sinks (copy; use add/remove to mutate)."""
        with self._lock:
            return list(self._sinks)

    def add_sink(self, sink: SpanSink) -> SpanSink:
        """Attach a sink; returns it for chaining."""
        with self._lock:
            self._sinks.append(sink)
        return sink

    def remove_sink(self, sink: SpanSink) -> None:
        """Detach a sink (no error when absent)."""
        with self._lock:
            if sink in self._sinks:
                self._sinks.remove(sink)

    def clear_sinks(self) -> None:
        """Detach every sink."""
        with self._lock:
            self._sinks.clear()

    def ring_buffer(self) -> RingBufferSink | None:
        """The first attached ring-buffer sink, if any."""
        with self._lock:
            for sink in self._sinks:
                if isinstance(sink, RingBufferSink):
                    return sink
        return None

    # -- spans -------------------------------------------------------------------

    def current_span(self) -> Span | None:
        """The span active in this context, or None."""
        return self._current.get()

    @contextmanager
    def span(self, name: str, **attributes: Any) -> Iterator[Span]:
        """Open a child span of whatever span is currently active."""
        parent = self._current.get()
        span_ = Span(name=name, attributes=dict(attributes), parent=parent)
        span_.started_at = time.perf_counter()
        cpu_started = time.thread_time_ns()
        token = self._current.set(span_)
        try:
            yield span_
        except BaseException as error:
            span_.status = STATUS_ERROR
            span_.error = f"{type(error).__name__}: {error}"
            raise
        finally:
            span_.cpu_ns = time.thread_time_ns() - cpu_started
            span_.ended_at = time.perf_counter()
            self._current.reset(token)
            if parent is not None:
                parent.children.append(span_)
            self._emit(span_)

    def _emit(self, span_: Span) -> None:
        with self._lock:
            sinks = list(self._sinks)
        for sink in sinks:
            sink.on_span_end(span_)

    def emit_log(self, logger_name: str, level: str, message: str) -> None:
        """Fan a log record out to every sink (used by the logging bridge)."""
        with self._lock:
            sinks = list(self._sinks)
        for sink in sinks:
            sink.on_log(logger_name, level, message)


#: The process-global tracer; disabled until :func:`repro.obs.configure`.
_global_tracer = Tracer(enabled=False)


def get_tracer() -> Tracer:
    """The process-global tracer."""
    return _global_tracer


def set_tracer(tracer: Tracer) -> Tracer:
    """Replace the process-global tracer; returns the previous one."""
    global _global_tracer
    previous = _global_tracer
    _global_tracer = tracer
    return previous


def span(name: str, **attributes: Any):
    """A span on the global tracer; a shared no-op when tracing is off.

    This is the instrumentation entry point used throughout the pipeline:
    ``with span("xsdgen.library", library=name): ...``.  The disabled path
    allocates nothing.
    """
    tracer = _global_tracer
    if not tracer.enabled:
        return _NOOP_CONTEXT
    return tracer.span(name, **attributes)
