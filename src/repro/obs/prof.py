"""Span-tree profiling: deterministic call-tree profiles over finished spans.

The tracer answers "*what happened* during this run"; this module answers
"*where did the time go*".  :func:`build_profile` folds any number of
finished span trees into a :class:`Profile` -- one :class:`ProfileNode`
per unique root-to-span *name path* (the call-tree shape, so two
``xsdgen.library`` spans under different parents aggregate separately) --
recording per node:

* ``count`` -- how many spans landed on the path,
* ``wall_ms`` / ``self_wall_ms`` -- total wall time, and wall time not
  attributed to child spans,
* ``cpu_ms`` / ``self_cpu_ms`` -- the same split for thread CPU time
  (``Span.cpu_ms``, captured via :func:`time.thread_time_ns`), so
  ``wall - cpu`` exposes waiting (locks, I/O, the GIL) per node,
* ``min_ms`` / ``max_ms`` -- wall-time extremes across occurrences.

Three renderings, all deterministic (stable sort keys, rounded floats):

* :meth:`Profile.render_table` -- a top-N hot-path table for terminals,
* :meth:`Profile.to_dict` / :meth:`Profile.render_json` -- machine-readable,
* :meth:`Profile.to_collapsed` -- collapsed-stack lines
  (``a;b;c <self-wall-microseconds>``), the input format of Brendan
  Gregg's ``flamegraph.pl`` and every speedscope-style viewer.

For function-level drill-down below span granularity,
:func:`cprofile_session` wraps a code region in :mod:`cProfile` and
:func:`cprofile_stats_text` formats the result -- used by
``upcc profile --cprofile-out``.  Everything here is read-side only: the
module never touches the hot path, so profiling costs nothing unless a
report is actually built.
"""

from __future__ import annotations

import io
import json
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator

from repro.obs.trace import Span, Tracer

#: Separator used by the collapsed-stack ("flamegraph") output format.
_STACK_SEP = ";"


@dataclass
class ProfileNode:
    """Aggregate facts for one call-tree path (tuple of span names)."""

    path: tuple[str, ...]
    count: int = 0
    wall_ms: float = 0.0
    self_wall_ms: float = 0.0
    cpu_ms: float = 0.0
    self_cpu_ms: float = 0.0
    min_ms: float | None = None
    max_ms: float | None = None

    @property
    def name(self) -> str:
        """The leaf span name of the path."""
        return self.path[-1]

    @property
    def stack(self) -> str:
        """The path in collapsed-stack notation (``root;child;leaf``)."""
        return _STACK_SEP.join(self.path)

    @property
    def depth(self) -> int:
        """Nesting depth (0 for root paths)."""
        return len(self.path) - 1

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready representation with rounded, stable values."""
        return {
            "stack": self.stack,
            "depth": self.depth,
            "count": self.count,
            "wall_ms": round(self.wall_ms, 3),
            "self_wall_ms": round(self.self_wall_ms, 3),
            "cpu_ms": round(self.cpu_ms, 3),
            "self_cpu_ms": round(self.self_cpu_ms, 3),
            "min_ms": round(self.min_ms, 3) if self.min_ms is not None else 0.0,
            "max_ms": round(self.max_ms, 3) if self.max_ms is not None else 0.0,
        }


@dataclass
class Profile:
    """A folded call-tree profile over one or more finished span trees."""

    nodes: dict[tuple[str, ...], ProfileNode] = field(default_factory=dict)
    span_count: int = 0

    # -- building -----------------------------------------------------------------

    def add_span_tree(self, root: Span) -> None:
        """Fold one finished span tree into the profile."""
        self._add(root, ())

    def _add(self, span_: Span, prefix: tuple[str, ...]) -> None:
        path = prefix + (span_.name,)
        node = self.nodes.get(path)
        if node is None:
            node = self.nodes[path] = ProfileNode(path)
        wall = span_.duration_ms
        cpu = span_.cpu_ms
        child_wall = sum(child.duration_ms for child in span_.children)
        child_cpu = sum(child.cpu_ms for child in span_.children)
        node.count += 1
        node.wall_ms += wall
        # Self time can dip below zero from clock granularity (a child's
        # rounded duration exceeding the parent's); clamp so totals stay sane.
        node.self_wall_ms += max(0.0, wall - child_wall)
        node.cpu_ms += cpu
        node.self_cpu_ms += max(0.0, cpu - child_cpu)
        node.min_ms = wall if node.min_ms is None else min(node.min_ms, wall)
        node.max_ms = wall if node.max_ms is None else max(node.max_ms, wall)
        self.span_count += 1
        for child in span_.children:
            self._add(child, path)

    # -- views --------------------------------------------------------------------

    def sorted_nodes(self, by: str = "self_wall_ms") -> list[ProfileNode]:
        """Nodes hottest-first; ties break on the stack path (deterministic)."""
        if by not in ("self_wall_ms", "wall_ms", "cpu_ms", "self_cpu_ms", "count"):
            raise ValueError(f"cannot sort a profile by {by!r}")
        return sorted(
            self.nodes.values(), key=lambda n: (-getattr(n, by), n.path)
        )

    def tree_nodes(self) -> list[ProfileNode]:
        """Nodes in call-tree order (parents before children, paths sorted)."""
        return [self.nodes[path] for path in sorted(self.nodes)]

    def render_table(self, top: int = 20, by: str = "self_wall_ms") -> str:
        """A top-N hot-path table, hottest (by ``by``) first."""
        nodes = self.sorted_nodes(by)[: max(1, top)]
        if not nodes:
            return "(no spans profiled)"
        header = (
            f"{'count':>6}  {'wall ms':>10}  {'self ms':>10}  "
            f"{'cpu ms':>10}  {'self cpu':>10}  path"
        )
        lines = [header, "-" * len(header)]
        for node in nodes:
            lines.append(
                f"{node.count:>6}  {node.wall_ms:>10.3f}  {node.self_wall_ms:>10.3f}  "
                f"{node.cpu_ms:>10.3f}  {node.self_cpu_ms:>10.3f}  {node.stack}"
            )
        lines.append(
            f"({len(self.nodes)} path(s), {self.span_count} span(s), "
            f"sorted by {by})"
        )
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        """The whole profile as one JSON-ready mapping (call-tree order)."""
        return {
            "span_count": self.span_count,
            "paths": len(self.nodes),
            "nodes": [node.to_dict() for node in self.tree_nodes()],
        }

    def render_json(self, indent: int | None = 2) -> str:
        """The profile as a JSON document."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def to_collapsed(self) -> str:
        """Collapsed-stack lines: ``root;child;leaf <self-wall-us>``.

        The value is the node's *self* wall time in integer microseconds
        (flamegraph viewers sum leaf values up the stack themselves, so
        emitting totals would double-count).  Zero-valued stacks are kept:
        they still carry call-count information for diff tooling.
        """
        lines = [
            f"{node.stack} {int(round(node.self_wall_ms * 1000.0))}"
            for node in self.tree_nodes()
        ]
        return "\n".join(lines)

    def render(self, format: str = "table", top: int = 20) -> str:
        """Render in one of the CLI formats: table, json or collapsed."""
        if format == "table":
            return self.render_table(top=top)
        if format == "json":
            return self.render_json()
        if format == "collapsed":
            return self.to_collapsed()
        raise ValueError(f"unknown profile format {format!r}")


def build_profile(roots: Iterable[Span]) -> Profile:
    """Fold finished span trees (e.g. ``RingBufferSink.roots``) into a profile."""
    profile = Profile()
    for root in roots:
        profile.add_span_tree(root)
    return profile


def profile_from_tracer(tracer: Tracer) -> Profile:
    """The profile of everything in the tracer's ring buffer (empty if none)."""
    ring = tracer.ring_buffer()
    return build_profile(ring.roots if ring is not None else ())


# -- Chrome trace-event export ----------------------------------------------------


def to_trace_events(
    roots: Iterable[Span], *, pid: int = 1
) -> dict[str, Any]:
    """Finished span trees as a Chrome trace-event JSON document.

    The returned object -- ``{"traceEvents": [...], "displayTimeUnit":
    "ms"}`` -- loads directly into Perfetto (https://ui.perfetto.dev) or
    ``chrome://tracing``.  Each span becomes one complete (``ph: "X"``)
    event with microsecond ``ts``/``dur``; timestamps are rebased so the
    earliest span starts at 0 (``Span.started_at`` is ``perf_counter``
    time, whose epoch is arbitrary).  Every tree renders on its own
    ``tid`` track so concurrent requests don't visually interleave, and
    span ids, status and attributes ride along in ``args``.
    """
    root_list = [root for root in roots if root is not None]
    if not root_list:
        return {"traceEvents": [], "displayTimeUnit": "ms"}
    origin = min(root.started_at for root in root_list)
    events: list[dict[str, Any]] = []
    for tid, root in enumerate(root_list, start=1):
        for span_, _depth in root.walk():
            if not span_.finished:
                continue
            args: dict[str, Any] = {"id": span_.span_id, "status": span_.status}
            if span_.parent is not None:
                args["parent_id"] = span_.parent.span_id
            if span_.attributes:
                args.update(
                    {str(key): value for key, value in span_.attributes.items()}
                )
            if span_.error is not None:
                args["error"] = span_.error
            events.append({
                "name": span_.name,
                "ph": "X",
                "pid": pid,
                "tid": tid,
                "ts": round((span_.started_at - origin) * 1e6, 3),
                "dur": round(span_.duration_ms * 1000.0, 3),
                "cat": "span",
                "args": args,
            })
    events.sort(key=lambda event: (event["tid"], event["ts"], event["name"]))
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def render_trace_events(roots: Iterable[Span], *, pid: int = 1) -> str:
    """:func:`to_trace_events` as a JSON string (what the capture files hold)."""
    return json.dumps(to_trace_events(roots, pid=pid), sort_keys=True)


# -- function-level drill-down ---------------------------------------------------


@contextmanager
def cprofile_session() -> Iterator[Any]:
    """Run the enclosed block under :mod:`cProfile`; yields the profiler.

    Span profiles show *which pipeline stage* is hot; this shows *which
    function*.  Deliberately separate from tracing so the (heavy)
    profiler only runs when explicitly attached.
    """
    import cProfile

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        yield profiler
    finally:
        profiler.disable()


def cprofile_stats_text(profiler: Any, top: int = 25, sort: str = "cumulative") -> str:
    """Format a :func:`cprofile_session` profiler as a pstats text report."""
    import pstats

    stream = io.StringIO()
    stats = pstats.Stats(profiler, stream=stream)
    stats.sort_stats(sort).print_stats(top)
    return stream.getvalue()
