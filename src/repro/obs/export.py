"""Prometheus text exposition for the metrics registry, plus a parser.

:func:`render_prometheus` turns a :class:`~repro.obs.metrics.MetricsRegistry`
into the `Prometheus text exposition format
<https://prometheus.io/docs/instrumenting/exposition_formats/>`_ (version
``0.0.4``) served by ``GET /metrics`` on the ``upcc serve`` daemon:

* one ``# HELP`` / ``# TYPE`` pair per metric family, families sorted by
  name, dotted metric names sanitized to ``snake_case`` identifiers;
* counters and gauges as plain samples with escaped label values;
* histograms as cumulative ``<name>_bucket{le="..."}`` series over the
  fixed log-scale ladder (:data:`repro.obs.metrics.DEFAULT_BUCKETS`),
  closed by ``le="+Inf"``, plus ``<name>_sum`` and ``<name>_count``.

``openmetrics=True`` switches to the `OpenMetrics text format
<https://github.com/OpenObservability/OpenMetrics>`_ instead: bucket
exemplars are emitted (an OpenMetrics-only feature the classic 0.0.4
parser rejects), counter families are named without the ``_total``
sample suffix as the spec requires, and the payload is terminated by
``# EOF``.  The daemon negotiates the variant off the scraper's
``Accept`` header, so a stock Prometheus server always gets a payload
its parser accepts while exemplar-aware scrapers opt in.

:func:`parse_prometheus_text` is the stdlib-only inverse used by the
exposition tests, the CI smoke step and ``upcc top``: it parses an
exposition payload back into metric families and validates the
structural invariants (TYPE before samples, bucket monotonicity,
``_count`` == the ``+Inf`` bucket).  :func:`quantile_from_buckets`
estimates percentiles from a scraped cumulative bucket series, which is
how the load generator and dashboard report server-side p99 without any
access to the raw observations.
"""

from __future__ import annotations

import math
import re
from typing import TYPE_CHECKING, Any, Iterable, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.obs.metrics import MetricsRegistry

__all__ = [
    "OPENMETRICS_CONTENT_TYPE",
    "PROMETHEUS_CONTENT_TYPE",
    "MetricFamily",
    "counter_exposition_name",
    "escape_help_text",
    "escape_label_value",
    "format_value",
    "parse_prometheus_text",
    "quantile_from_buckets",
    "render_prometheus",
    "sanitize_metric_name",
]

#: The content type ``GET /metrics`` answers with by default.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"
#: The content type of the exemplar-bearing OpenMetrics variant, served
#: when the scraper's ``Accept`` header asks for it.
OPENMETRICS_CONTENT_TYPE = (
    "application/openmetrics-text; version=1.0.0; charset=utf-8"
)

_NAME_OK_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_NAME_BAD_CHARS = re.compile(r"[^a-zA-Z0-9_:]")

_METRIC_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*")
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def sanitize_metric_name(name: str) -> str:
    """``name`` as a valid Prometheus metric name.

    The registry's dotted names (``serve.request_ms``) become underscore
    names (``serve_request_ms``); any other invalid character maps to
    ``_`` and a leading digit gets a ``_`` prefix.
    """
    if _NAME_OK_RE.match(name):
        return name
    sanitized = _NAME_BAD_CHARS.sub("_", name)
    if not sanitized or sanitized[0].isdigit():
        sanitized = f"_{sanitized}"
    return sanitized


def counter_exposition_name(base_name: str) -> str:
    """The exposition name of a counter: sanitized, with ``_total`` enforced.

    Prometheus convention names every counter ``<thing>_total``; internal
    dotted names that already follow it (``serve.requests_total``) pass
    through, the rest (``serve.model_cache_hits``) gain the suffix.
    """
    name = sanitize_metric_name(base_name)
    return name if name.endswith("_total") else f"{name}_total"


def escape_label_value(value: Any) -> str:
    """A label value escaped per the exposition spec (``\\``, ``"``, newline)."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _unescape_label_value(value: str) -> str:
    out: list[str] = []
    index = 0
    while index < len(value):
        char = value[index]
        if char == "\\" and index + 1 < len(value):
            nxt = value[index + 1]
            out.append({"n": "\n", "\\": "\\", '"': '"'}.get(nxt, nxt))
            index += 2
        else:
            out.append(char)
            index += 1
    return "".join(out)


def escape_help_text(text: str) -> str:
    """HELP-line text escaped per the exposition spec (``\\`` and newline)."""
    return str(text).replace("\\", "\\\\").replace("\n", "\\n")


def format_value(value: float) -> str:
    """A sample value in exposition form (ints stay ints, ``+Inf`` spelled out)."""
    if isinstance(value, bool):  # bool is an int subclass; be explicit
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    as_float = float(value)
    if math.isinf(as_float):
        return "+Inf" if as_float > 0 else "-Inf"
    if math.isnan(as_float):
        return "NaN"
    if as_float == int(as_float) and abs(as_float) < 1e15:
        return str(int(as_float))
    return repr(as_float)


def format_le(bound: float) -> str:
    """A bucket bound as its ``le`` label value (``0.25``, ``10``, ``+Inf``)."""
    if math.isinf(bound):
        return "+Inf"
    return format(bound, "g")


def _render_labels(labels: dict[str, Any], extra: str | None = None) -> str:
    parts = [
        f'{key}="{escape_label_value(labels[key])}"' for key in sorted(labels)
    ]
    if extra is not None:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def render_prometheus(
    registry: "MetricsRegistry", *, openmetrics: bool = False
) -> str:
    """``registry`` as a Prometheus text exposition payload.

    Deterministic: families sorted by exposition name, series within a
    family sorted by label set, one trailing newline.

    ``openmetrics=True`` renders the OpenMetrics variant instead: bucket
    exemplars included, counter HELP/TYPE lines named without the
    ``_total`` sample suffix, and a closing ``# EOF``.  The default
    classic 0.0.4 payload carries **no** exemplars -- the classic parser
    treats the ``#`` mid-line as a syntax error and fails the whole
    scrape.
    """
    from repro.obs.metrics import description_of

    counters, gauges, histograms = registry.instruments()
    families: dict[str, tuple[str, str, list[str]]] = {}

    def family(base_name: str, kind: str, name: str) -> list[str]:
        if name not in families:
            described = description_of(base_name)
            help_text = escape_help_text(
                described if described is not None
                else f"repro metric {base_name} ({kind})"
            )
            families[name] = (kind, help_text, [])
        return families[name][2]

    for instrument in sorted(counters, key=lambda c: (c.base_name, c.name)):
        name = counter_exposition_name(instrument.base_name)
        # OpenMetrics names the *family* without the ``_total`` suffix
        # its samples carry; the classic format uses one name for both.
        family_name = name[: -len("_total")] if openmetrics else name
        lines = family(instrument.base_name, "counter", family_name)
        lines.append(
            f"{name}{_render_labels(instrument.labels)} "
            f"{format_value(instrument.value)}"
        )
    for instrument in sorted(gauges, key=lambda g: (g.base_name, g.name)):
        name = sanitize_metric_name(instrument.base_name)
        lines = family(instrument.base_name, "gauge", name)
        lines.append(
            f"{name}{_render_labels(instrument.labels)} "
            f"{format_value(float(instrument.value))}"
        )
    for instrument in sorted(histograms, key=lambda h: (h.base_name, h.name)):
        name = sanitize_metric_name(instrument.base_name)
        lines = family(instrument.base_name, "histogram", name)
        pairs = instrument.cumulative_buckets()
        exemplars = (
            instrument.bucket_exemplars() if openmetrics
            else [(bound, None) for bound, _ in pairs]
        )
        with instrument._lock:
            total, count = instrument.total, instrument.count
        for (bound, cumulative), (_, exemplar) in zip(pairs, exemplars):
            le = f'le="{format_le(bound)}"'
            line = (
                f"{name}_bucket{_render_labels(instrument.labels, le)} "
                f"{cumulative}"
            )
            if exemplar is not None:
                line += (
                    f' # {{trace_id="{escape_label_value(exemplar.trace_id)}"'
                    f',request_id="{escape_label_value(exemplar.request_id)}"}}'
                    f" {format_value(round(exemplar.value, 6))}"
                    f" {format_value(round(exemplar.ts, 6))}"
                )
            lines.append(line)
        lines.append(
            f"{name}_sum{_render_labels(instrument.labels)} "
            f"{format_value(round(total, 6))}"
        )
        lines.append(f"{name}_count{_render_labels(instrument.labels)} {count}")

    output: list[str] = []
    for name in sorted(families):
        kind, help_text, lines = families[name]
        output.append(f"# HELP {name} {help_text}")
        output.append(f"# TYPE {name} {kind}")
        output.extend(lines)
    if openmetrics:
        output.append("# EOF")
    return "\n".join(output) + "\n" if output else "\n"


class MetricFamily:
    """One parsed exposition family: type, help, samples and exemplars."""

    __slots__ = ("name", "type", "help", "samples", "exemplars")

    def __init__(self, name: str, type_: str | None = None,
                 help_: str | None = None) -> None:
        self.name = name
        self.type = type_
        self.help = help_
        #: ``(sample name, labels dict, float value)`` in payload order.
        self.samples: list[tuple[str, dict[str, str], float]] = []
        #: OpenMetrics exemplars, kept apart from ``samples`` so existing
        #: 3-tuple consumers keep working:
        #: ``(sample name, sample labels, exemplar labels, value, ts)``.
        self.exemplars: list[
            tuple[str, dict[str, str], dict[str, str], float, float | None]
        ] = []

    def values(self) -> list[float]:
        """The raw sample values, payload order."""
        return [value for _, _, value in self.samples]

    def buckets(self, labels: dict[str, str] | None = None) -> list[tuple[float, int]]:
        """The cumulative ``(le, count)`` series of a histogram family.

        ``labels`` (if given) filters to the series whose non-``le``
        labels equal it; otherwise bucket samples across all series with
        equal ``le`` are summed (scrape-side aggregation).
        """
        by_le: dict[float, int] = {}
        for name, sample_labels, value in self.samples:
            if not name.endswith("_bucket") or "le" not in sample_labels:
                continue
            rest = {k: v for k, v in sample_labels.items() if k != "le"}
            if labels is not None and rest != labels:
                continue
            le_text = sample_labels["le"]
            bound = float("inf") if le_text == "+Inf" else float(le_text)
            by_le[bound] = by_le.get(bound, 0) + int(value)
        return sorted(by_le.items())


def _parse_value(text: str) -> float:
    if text == "+Inf":
        return float("inf")
    if text == "-Inf":
        return float("-inf")
    if text == "NaN":
        return float("nan")
    return float(text)


def _scan_labels(text: str, pos: int) -> tuple[dict[str, str], int]:
    """Parse the ``{...}`` label block starting at ``text[pos]``.

    Returns ``(labels, position after the closing brace)``.  The block is
    consumed one ``name="value"`` pair at a time, so a label *value*
    containing ``}``, ``#`` or ``,`` can never end the block early -- the
    only ``}`` that closes it is one outside a quoted value.
    """
    labels: dict[str, str] = {}
    pos += 1  # past the opening brace
    while True:
        if pos >= len(text):
            raise ValueError("unterminated label block")
        if text[pos] == "}":
            return labels, pos + 1
        match = _LABEL_RE.match(text, pos)
        if match is None:
            raise ValueError(f"unparsable labels near {text[pos:]!r}")
        labels[match.group(1)] = _unescape_label_value(match.group(2))
        pos = match.end()
        if pos < len(text) and text[pos] == ",":
            pos += 1


def _parse_sample_line(
    line: str,
) -> tuple[str, dict[str, str], str, tuple[dict[str, str], str, str | None] | None]:
    """Split one sample line into name, labels, value text and exemplar.

    ``name{labels} value`` with an optional OpenMetrics exemplar trailer
    ``# {labels} value [timestamp]``.  Label blocks are scanned
    label-by-label (:func:`_scan_labels`) rather than matched by a
    whole-line regex, so ``'} '`` or ``'# {'`` *inside* a label value is
    plain data, never a phantom block terminator or exemplar.
    """
    match = _METRIC_NAME_RE.match(line)
    if match is None:
        raise ValueError("no metric name")
    name = match.group(0)
    pos = match.end()
    labels: dict[str, str] = {}
    if pos < len(line) and line[pos] == "{":
        labels, pos = _scan_labels(line, pos)
    if pos < len(line) and not line[pos].isspace():
        raise ValueError(f"junk after labels: {line[pos:]!r}")
    rest = line[pos:].strip()
    if not rest:
        raise ValueError("missing value")
    parts = rest.split(None, 1)
    value_text = parts[0]
    trailer = parts[1].strip() if len(parts) > 1 else ""
    if not trailer:
        return name, labels, value_text, None
    if not trailer.startswith("#"):
        raise ValueError(f"junk after value: {trailer!r}")
    body = trailer[1:].lstrip()
    if not body.startswith("{"):
        raise ValueError(f"malformed exemplar: {trailer!r}")
    exemplar_labels, end = _scan_labels(body, 0)
    tokens = body[end:].split()
    if not tokens or len(tokens) > 2:
        raise ValueError(f"malformed exemplar: {trailer!r}")
    exemplar = (exemplar_labels, tokens[0], tokens[1] if len(tokens) == 2 else None)
    return name, labels, value_text, exemplar


def parse_prometheus_text(text: str) -> dict[str, MetricFamily]:
    """Parse an exposition payload into families; raise ``ValueError`` on defects.

    Structural validation beyond raw syntax:

    * a sample's family must match a preceding ``# TYPE`` (untyped
      samples form an implicit ``untyped`` family, as the spec allows);
    * histogram ``_bucket`` series must be cumulative (non-decreasing in
      ``le`` order) and closed by ``le="+Inf"``;
    * a histogram's ``_count`` must equal its ``+Inf`` bucket.
    """
    families: dict[str, MetricFamily] = {}

    def family_for_sample(sample_name: str) -> MetricFamily:
        for suffix in ("_bucket", "_sum", "_count"):
            if sample_name.endswith(suffix):
                base = sample_name[: -len(suffix)]
                if base in families and families[base].type == "histogram":
                    return families[base]
        # OpenMetrics counter families are declared without the _total
        # suffix their samples carry.
        if sample_name.endswith("_total"):
            base = sample_name[: -len("_total")]
            if base in families and families[base].type == "counter":
                return families[base]
        if sample_name not in families:
            families[sample_name] = MetricFamily(sample_name, "untyped")
        return families[sample_name]

    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.rstrip()
        if not line:
            continue
        if line.startswith("# HELP "):
            parts = line[len("# HELP "):].split(" ", 1)
            name = parts[0]
            family = families.setdefault(name, MetricFamily(name))
            family.help = parts[1] if len(parts) > 1 else ""
            continue
        if line.startswith("# TYPE "):
            parts = line[len("# TYPE "):].split(" ", 1)
            if len(parts) != 2:
                raise ValueError(f"line {line_number}: malformed TYPE line: {line!r}")
            name, type_ = parts
            if type_ not in ("counter", "gauge", "histogram", "summary", "untyped"):
                raise ValueError(
                    f"line {line_number}: unknown metric type {type_!r}"
                )
            family = families.setdefault(name, MetricFamily(name))
            if family.samples:
                raise ValueError(
                    f"line {line_number}: TYPE for {name!r} after its samples"
                )
            family.type = type_
            continue
        if line.startswith("#"):
            continue  # comment (including the OpenMetrics "# EOF")
        try:
            name, labels, value_text, exemplar_parts = _parse_sample_line(line)
        except ValueError as error:
            raise ValueError(
                f"line {line_number}: unparsable sample: {line!r} ({error})"
            ) from None
        try:
            value = _parse_value(value_text)
        except ValueError:
            raise ValueError(
                f"line {line_number}: unparsable value {value_text!r}"
            ) from None
        family = family_for_sample(name)
        family.samples.append((name, labels, value))
        if exemplar_parts is not None:
            exemplar_labels, exemplar_value_text, ts_text = exemplar_parts
            try:
                exemplar_value = _parse_value(exemplar_value_text)
                exemplar_ts = _parse_value(ts_text) if ts_text else None
            except ValueError:
                raise ValueError(
                    f"line {line_number}: unparsable exemplar on {line!r}"
                ) from None
            family.exemplars.append(
                (name, labels, exemplar_labels, exemplar_value, exemplar_ts)
            )

    _validate_histograms(families)
    return families


def _validate_histograms(families: dict[str, MetricFamily]) -> None:
    for family in families.values():
        if family.type != "histogram":
            continue
        series: dict[tuple[tuple[str, str], ...], list[tuple[float, float]]] = {}
        counts: dict[tuple[tuple[str, str], ...], float] = {}
        for name, labels, value in family.samples:
            rest = tuple(sorted(
                (k, v) for k, v in labels.items() if k != "le"
            ))
            if name.endswith("_bucket"):
                le_text = labels.get("le")
                if le_text is None:
                    raise ValueError(
                        f"{family.name}: bucket sample without an le label"
                    )
                bound = float("inf") if le_text == "+Inf" else float(le_text)
                series.setdefault(rest, []).append((bound, value))
            elif name.endswith("_count"):
                counts[rest] = value
        for rest, pairs in series.items():
            pairs.sort()
            if not pairs or not math.isinf(pairs[-1][0]):
                raise ValueError(
                    f"{family.name}: bucket series not closed by le=\"+Inf\""
                )
            previous = -1.0
            for bound, value in pairs:
                if value < previous:
                    raise ValueError(
                        f"{family.name}: bucket counts not cumulative at "
                        f"le={format_le(bound)}"
                    )
                previous = value
            if rest in counts and counts[rest] != pairs[-1][1]:
                raise ValueError(
                    f"{family.name}: _count {counts[rest]} != +Inf bucket "
                    f"{pairs[-1][1]}"
                )


def quantile_from_buckets(
    buckets: Sequence[tuple[float, float]] | Iterable[tuple[float, float]],
    q: float,
) -> float:
    """Estimated q-th percentile from a *cumulative* ``(le, count)`` series.

    The scrape-side twin of :meth:`repro.obs.metrics.Histogram.quantile`:
    linear interpolation inside the bucket containing the target rank.
    The ``+Inf`` bucket has no finite upper edge, so estimates clamp to
    the last finite bound.  0.0 when the series is empty.
    """
    pairs = sorted(buckets)
    if not pairs:
        return 0.0
    total = pairs[-1][1]
    if total <= 0:
        return 0.0
    target = max(1e-12, q / 100.0) * total
    lower = 0.0
    previous_count = 0.0
    last_finite = 0.0
    for bound, cumulative in pairs:
        if cumulative >= target:
            in_bucket = cumulative - previous_count
            if math.isinf(bound):
                return last_finite
            if in_bucket <= 0:
                return bound
            fraction = (target - previous_count) / in_bucket
            return lower + (bound - lower) * fraction
        previous_count = cumulative
        if not math.isinf(bound):
            lower = bound
            last_finite = bound
    return last_finite
