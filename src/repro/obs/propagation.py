"""W3C Trace Context propagation: ``traceparent`` / ``tracestate`` headers.

Implements the wire half of distributed tracing for the serve daemon and
its clients, per the `W3C Trace Context
<https://www.w3.org/TR/trace-context/>`_ recommendation:

* :func:`parse_traceparent` / :func:`render_traceparent` -- the
  ``00-<trace-id>-<parent-id>-<flags>`` header, strictly validated
  (length, lowercase hex, all-zero ids rejected) but forward-compatible:
  an unknown version with extra fields still yields the leading four,
  exactly as the spec's "parse to the extent possible" rule asks;
* :func:`parse_tracestate` / :func:`render_tracestate` -- the ordered
  vendor ``key=value`` list, entry count and length bounded per spec;
* :class:`TraceContext` -- one request's correlation identity: the
  128-bit trace id shared by every span of a distributed request, the
  16-hex id of the *direct parent* span, and the sampled flag;
* a :mod:`contextvars` slot (:func:`current_trace_context` /
  :func:`use_trace_context`) so code deep in the pipeline -- metric
  exemplars, access logs, slow-trace captures -- can read the active
  trace identity without threading it through every call.  The slot
  rides the same ``contextvars.copy_context()`` snapshot the serve
  worker pool already propagates across its thread hop.

Stdlib-only; ids come from :func:`os.urandom` (the spec requires random,
not sequential, ids).
"""

from __future__ import annotations

import contextvars
import os
import re
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from typing import Iterator

__all__ = [
    "TRACEPARENT_HEADER",
    "TRACESTATE_HEADER",
    "TraceContext",
    "current_trace_context",
    "new_span_id",
    "new_trace_id",
    "parse_traceparent",
    "parse_tracestate",
    "render_traceparent",
    "render_tracestate",
    "use_trace_context",
]

#: Canonical header names (HTTP header lookup is case-insensitive).
TRACEPARENT_HEADER = "traceparent"
TRACESTATE_HEADER = "tracestate"

#: The flag bit signalling "the caller recorded this trace".
FLAG_SAMPLED = 0x01

_TRACE_ID_RE = re.compile(r"^[0-9a-f]{32}$")
_SPAN_ID_RE = re.compile(r"^[0-9a-f]{16}$")
_VERSION_RE = re.compile(r"^[0-9a-f]{2}$")
_FLAGS_RE = re.compile(r"^[0-9a-f]{2}$")
#: ``tracestate`` keys: lowercase identifier, optionally ``tenant@vendor``.
_STATE_KEY_RE = re.compile(r"^[a-z0-9][a-z0-9_\-*/]{0,255}(@[a-z][a-z0-9_\-*/]{0,13})?$")

#: Spec bounds for tracestate: at most 32 list members.
MAX_TRACESTATE_ENTRIES = 32


def new_trace_id() -> str:
    """A fresh random 128-bit trace id as 32 lowercase hex chars."""
    return os.urandom(16).hex()


def new_span_id() -> str:
    """A fresh random 64-bit span (parent) id as 16 lowercase hex chars."""
    return os.urandom(8).hex()


@dataclass(frozen=True)
class TraceContext:
    """One request's W3C trace identity.

    ``trace_id`` is shared by every span of the distributed request;
    ``parent_id`` names the span that *caused* the current work (the
    caller's span on an incoming request, our own span on an outgoing
    one).  ``tracestate`` keeps the vendor list intact for pass-through.
    """

    trace_id: str
    parent_id: str
    sampled: bool = True
    tracestate: tuple[tuple[str, str], ...] = field(default_factory=tuple)

    @classmethod
    def new(cls, *, sampled: bool = True) -> "TraceContext":
        """Originate a fresh trace (new trace id, new parent id)."""
        return cls(trace_id=new_trace_id(), parent_id=new_span_id(), sampled=sampled)

    def child(self) -> "TraceContext":
        """The context an outgoing call should carry: same trace, new parent."""
        return replace(self, parent_id=new_span_id())

    def to_traceparent(self) -> str:
        """This context as a ``traceparent`` header value."""
        return render_traceparent(self)


def parse_traceparent(header: str | None) -> TraceContext | None:
    """A :class:`TraceContext` from a ``traceparent`` header, or ``None``.

    Strict on the parts that matter for correlation (id lengths, hex
    case, the all-zero invalid ids) and lenient on the rest: a version
    above ``00`` may carry extra dash-separated fields which are ignored,
    per the spec's forward-compatibility rule.  Version ``ff`` is
    explicitly invalid.
    """
    if not header:
        return None
    parts = header.strip().split("-")
    if len(parts) < 4:
        return None
    version, trace_id, parent_id, flags = parts[0], parts[1], parts[2], parts[3]
    if not _VERSION_RE.match(version) or version == "ff":
        return None
    if version == "00" and len(parts) != 4:
        return None
    if not _TRACE_ID_RE.match(trace_id) or trace_id == "0" * 32:
        return None
    if not _SPAN_ID_RE.match(parent_id) or parent_id == "0" * 16:
        return None
    if not _FLAGS_RE.match(flags):
        return None
    return TraceContext(
        trace_id=trace_id,
        parent_id=parent_id,
        sampled=bool(int(flags, 16) & FLAG_SAMPLED),
    )


def render_traceparent(context: TraceContext) -> str:
    """``context`` as a version-00 ``traceparent`` header value."""
    flags = FLAG_SAMPLED if context.sampled else 0x00
    return f"00-{context.trace_id}-{context.parent_id}-{flags:02x}"


def parse_tracestate(header: str | None) -> tuple[tuple[str, str], ...]:
    """The ordered ``(key, value)`` entries of a ``tracestate`` header.

    Malformed entries are dropped (the spec allows discarding the whole
    header on defects; keeping the valid prefix preserves more vendor
    context), duplicate keys keep their first occurrence, and the list
    is truncated at the spec's 32-member bound.
    """
    if not header:
        return ()
    entries: list[tuple[str, str]] = []
    seen: set[str] = set()
    for raw in header.split(","):
        member = raw.strip()
        if not member:
            continue  # empty members are allowed and ignored
        key, sep, value = member.partition("=")
        if not sep or not value or not _STATE_KEY_RE.match(key):
            continue
        if "," in value or "=" in value or key in seen:
            continue
        seen.add(key)
        entries.append((key, value))
        if len(entries) >= MAX_TRACESTATE_ENTRIES:
            break
    return tuple(entries)


def render_tracestate(entries: tuple[tuple[str, str], ...] | list[tuple[str, str]]) -> str:
    """``entries`` as a ``tracestate`` header value (empty string when none)."""
    return ",".join(f"{key}={value}" for key, value in entries)


#: The ambient trace identity of the current execution context.  Rides
#: ``contextvars.copy_context()`` snapshots, so the serve worker pool's
#: thread hop preserves it without extra plumbing.
_current: contextvars.ContextVar[TraceContext | None] = contextvars.ContextVar(
    "repro_obs_trace_context", default=None
)


def current_trace_context() -> TraceContext | None:
    """The trace context active in this execution context, or ``None``."""
    return _current.get()


@contextmanager
def use_trace_context(context: TraceContext | None) -> Iterator[TraceContext | None]:
    """Make ``context`` the ambient trace identity for the enclosed block."""
    token = _current.set(context)
    try:
        yield context
    finally:
        _current.reset(token)
