"""A file-based core-component registry.

The paper's section 1 complains that "there is no format defined to
register and exchange core components"; this package is the registry built
on the XMI format: models are stored as XMI files under a directory, a JSON
index carries searchable metadata (library names, kinds, versions and all
dictionary entry names), and :meth:`Registry.search` answers DEN queries --
the "management console" direction of the paper's future work.
"""

from repro.registry.registry import Registry, RegistryEntry

__all__ = ["Registry", "RegistryEntry"]
