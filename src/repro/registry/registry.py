"""The registry implementation: XMI storage plus a JSON search index."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.ccts.model import CctsModel
from repro.errors import RegistryError
from repro.ndr.namespaces import NamespacePolicy
from repro.xmi import read_xmi, write_xmi

#: Name of the JSON index file inside the registry directory.
INDEX_FILE = "index.json"


@dataclass
class RegistryEntry:
    """Index metadata for one stored model."""

    name: str
    file: str
    libraries: list[dict] = field(default_factory=list)
    dictionary_entries: list[str] = field(default_factory=list)

    def to_json(self) -> dict:
        """The JSON shape stored in the index."""
        return {
            "name": self.name,
            "file": self.file,
            "libraries": self.libraries,
            "dictionary_entries": self.dictionary_entries,
        }

    @classmethod
    def from_json(cls, data: dict) -> "RegistryEntry":
        """Rebuild an entry from its JSON shape."""
        return cls(
            name=data["name"],
            file=data["file"],
            libraries=list(data.get("libraries", [])),
            dictionary_entries=list(data.get("dictionary_entries", [])),
        )


class Registry:
    """A directory-backed registry of core-component models."""

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._index: dict[str, RegistryEntry] = {}
        self._load_index()

    # -- persistence ------------------------------------------------------------

    def _index_path(self) -> Path:
        return self.directory / INDEX_FILE

    def _load_index(self) -> None:
        path = self._index_path()
        if not path.exists():
            return
        data = json.loads(path.read_text(encoding="utf-8"))
        for entry_data in data.get("entries", []):
            entry = RegistryEntry.from_json(entry_data)
            self._index[entry.name] = entry

    def _save_index(self) -> None:
        data = {"entries": [entry.to_json() for name, entry in sorted(self._index.items())]}
        self._index_path().write_text(json.dumps(data, indent=2), encoding="utf-8")

    # -- registration -------------------------------------------------------------

    def store(
        self,
        name: str,
        model: CctsModel,
        overwrite: bool = False,
        version: str | None = None,
    ) -> RegistryEntry:
        """Store ``model`` under ``name``; indexes its libraries and DENs.

        With ``version``, the entry is stored as ``name@version`` and the
        bare ``name`` keeps pointing at the latest stored version --
        ``load(name)`` returns it, ``load(name, version=...)`` pins one.
        """
        if version is not None:
            versioned = f"{name}@{version}"
            if versioned in self._index and not overwrite:
                raise RegistryError(
                    f"registry already contains {versioned!r} (pass overwrite=True)"
                )
            entry = self.store(versioned, model, overwrite=True)
            # Latest alias under the bare name.
            self.store(name, model, overwrite=True)
            return entry
        if name in self._index and not overwrite:
            raise RegistryError(f"registry already contains {name!r} (pass overwrite=True)")
        file_name = f"{name}.xmi"
        write_xmi(model.model, self.directory / file_name)
        entry = RegistryEntry(name=name, file=file_name)
        policy = NamespacePolicy()
        for library in model.libraries():
            if library.stereotype == "BusinessLibrary":
                continue
            entry.libraries.append(
                {
                    "name": library.name,
                    "kind": library.stereotype,
                    "version": library.library_version,
                    "urn": policy.namespace_for(library).urn,
                }
            )
        dens: list[str] = []
        for acc in model.accs():
            dens.append(acc.den())
            dens.extend(bcc.den() for bcc in acc.bccs)
            dens.extend(ascc.den() for ascc in acc.asccs)
        for abie in model.abies():
            dens.append(abie.den())
            dens.extend(bbie.den() for bbie in abie.bbies)
            dens.extend(asbie.den() for asbie in abie.asbies)
        entry.dictionary_entries = sorted(set(dens))
        self._index[name] = entry
        self._save_index()
        return entry

    def load(self, name: str, version: str | None = None) -> CctsModel:
        """Load the model stored under ``name`` (optionally a pinned version)."""
        key = f"{name}@{version}" if version is not None else name
        entry = self._index.get(key)
        if entry is None:
            raise RegistryError(f"registry contains no model {key!r}")
        model = read_xmi(self.directory / entry.file)
        return CctsModel(model=model)

    def versions_of(self, name: str) -> list[str]:
        """All stored version tags of ``name``, sorted."""
        prefix = f"{name}@"
        return sorted(key[len(prefix):] for key in self._index if key.startswith(prefix))

    def remove(self, name: str) -> None:
        """Remove a stored model and its file."""
        entry = self._index.pop(name, None)
        if entry is None:
            raise RegistryError(f"registry contains no model {name!r}")
        path = self.directory / entry.file
        if path.exists():
            path.unlink()
        self._save_index()

    # -- queries ----------------------------------------------------------------------

    def entries(self) -> list[RegistryEntry]:
        """All entries, sorted by name."""
        return [self._index[name] for name in sorted(self._index)]

    def search(self, term: str) -> list[tuple[str, str]]:
        """Case-insensitive DEN substring search: (model name, DEN) hits."""
        needle = term.lower()
        hits: list[tuple[str, str]] = []
        for name in sorted(self._index):
            for den in self._index[name].dictionary_entries:
                if needle in den.lower():
                    hits.append((name, den))
        return hits

    def libraries(self, kind: str | None = None) -> list[tuple[str, dict]]:
        """All registered libraries as (model name, library info) pairs."""
        found: list[tuple[str, dict]] = []
        for name in sorted(self._index):
            for library in self._index[name].libraries:
                if kind is None or library["kind"] == kind:
                    found.append((name, library))
        return found
