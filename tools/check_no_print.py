#!/usr/bin/env python
"""Lint: no bare ``print(`` calls inside ``src/repro``.

Library code must route diagnostics through the observability layer
(:mod:`repro.obs`: spans, metrics, ``repro.*`` loggers) so output is
capturable, filterable and silent by default.  Only the user-facing
surfaces may print: ``cli.py`` and the ``console`` package.

The check is AST-based, so ``print`` mentioned in docstrings or comments
is fine; only real call sites are flagged.  Run directly::

    python tools/check_no_print.py

or via the test suite (``tests/test_no_print.py`` wires it as a tier-1
test).
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

#: Files (relative to src/repro, posix-style) allowed to print.
ALLOWED_FILES = {"cli.py", "obs/query.py", "serve/loadgen.py", "serve/top.py"}
#: Directories (relative to src/repro) allowed to print.
ALLOWED_DIRS = ("console/",)


def _allowed(relative: str) -> bool:
    return relative in ALLOWED_FILES or relative.startswith(ALLOWED_DIRS)


def find_violations(package_root: Path) -> list[str]:
    """All bare print() call sites as ``path:line`` strings."""
    violations: list[str] = []
    for path in sorted(package_root.rglob("*.py")):
        relative = path.relative_to(package_root).as_posix()
        if _allowed(relative):
            continue
        tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "print"
            ):
                violations.append(f"{relative}:{node.lineno}")
    return violations


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns 0 when clean, 1 when violations exist."""
    arguments = argv if argv is not None else sys.argv[1:]
    if arguments:
        package_root = Path(arguments[0])
    else:
        package_root = Path(__file__).resolve().parent.parent / "src" / "repro"
    violations = find_violations(package_root)
    if violations:
        print("bare print() calls found; route diagnostics through repro.obs:")
        for violation in violations:
            print(f"  {violation}")
        return 1
    print("OK: no bare print() outside cli.py/console in src/repro")
    return 0


if __name__ == "__main__":
    sys.exit(main())
