#!/usr/bin/env python
"""The perf-trajectory tool: bench medians, history, baseline compare, profiles.

Runs the easybiz catalog's end-to-end generation in three arms --

* **cold** -- a fresh :class:`SchemaGenerator` per run, no cache,
* **warm** -- fresh generators sharing a pre-warmed
  :class:`~repro.xsdgen.cache.GenerationCache` (a second CLI invocation
  or long-lived service),
* **parallel** -- cold builds with ``jobs=4`` (byte-identical output;
  small models take the serial fallback, which is the point being
  measured),

and writes ``BENCH_end_to_end.json``: per-arm median milliseconds over
``--repeats`` runs plus schema/byte counts.  Beyond the snapshot report
it maintains the *trajectory*:

* every run appends one JSON line (report + UTC timestamp + git commit)
  to ``BENCH_history.jsonl`` (``--history FILE`` / ``--no-history``), so
  the full perf history of a checkout accretes locally and as a CI
  artifact;
* ``--baseline FILE`` compares the fresh numbers to a committed report
  with a configurable ``--tolerance`` (soft) -- the hard CI gate lives in
  ``tools/check_perf_regression.py``, which reuses the same comparison;
* ``--profile-out FILE`` re-runs each arm once under tracing *after* the
  timed passes (timings stay uninstrumented) and writes the span-tree
  profile in ``--profile-format`` table/json/collapsed form.

Run directly::

    python tools/bench_report.py [--repeats N] [--out FILE]
        [--baseline BENCH_end_to_end.json] [--tolerance PCT]
        [--profile-out profile.folded] [--profile-format collapsed]
"""

from __future__ import annotations

import argparse
import datetime
import json
import statistics
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT / "tools"))

from check_perf_regression import compare_reports, render_deltas  # noqa: E402

from repro.catalog import build_easybiz_model  # noqa: E402
from repro.xsdgen import GenerationCache, GenerationOptions, SchemaGenerator  # noqa: E402

ROOT_NAME = "HoardingPermit"
INSTANCE_CORPUS_SIZE = 200
SERVE_REQUESTS = 60
SERVE_CONCURRENCY = 8
SERVE_DOCS_PER_REQUEST = 4


def _timed(fn, repeats: int) -> tuple[float, object]:
    """(median seconds, last result) of ``repeats`` timed calls."""
    times = []
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        times.append(time.perf_counter() - start)
    return statistics.median(times), result


def _arm_stats(result) -> dict:
    texts = [generated.to_string() for generated in result.schemas.values()]
    return {
        "schemas": len(result.schemas),
        "bytes": sum(len(text.encode("utf-8")) for text in texts),
        "provenance_records": len(result.provenance),
    }


def _arms() -> list[tuple[str, object]]:
    """The named, closed-over arm callables (building their fixtures)."""
    catalog = build_easybiz_model()
    model = catalog.model
    library = catalog.doc_library

    cold_options = GenerationOptions(validate_first=False)

    def cold():
        return SchemaGenerator(model, cold_options).generate(library, root=ROOT_NAME)

    cache = GenerationCache()
    warm_options = GenerationOptions(validate_first=False, use_cache=True)
    SchemaGenerator(model, warm_options, cache=cache).generate(library, root=ROOT_NAME)

    def warm():
        return SchemaGenerator(model, warm_options, cache=cache).generate(
            library, root=ROOT_NAME
        )

    parallel_options = GenerationOptions(validate_first=False, jobs=4)

    def parallel():
        return SchemaGenerator(model, parallel_options).generate(library, root=ROOT_NAME)

    return [("cold", cold), ("warm_cache", warm), ("parallel_jobs4", parallel)]


def _instance_arms(corpus_root: Path) -> list[tuple[str, object]]:
    """Instance-validation arms over a generated 200-document corpus.

    Mirrors ``benchmarks/bench_instance_throughput.py``: the uncompiled
    serial path is the baseline the compiled/parallel arms are graded
    against (the ISSUE-7 acceptance bar is compiled+parallel >= 3x).
    """
    from repro.instances import InstanceGenerator, ValidationPipeline, add_unknown_child
    from repro.xmlutil.writer import XmlWriter

    catalog = build_easybiz_model()
    result = SchemaGenerator(catalog.model, GenerationOptions()).generate(
        catalog.doc_library, root=ROOT_NAME
    )
    schema_set = result.schema_set()
    corpus = corpus_root / "instance_corpus"
    corpus.mkdir(parents=True, exist_ok=True)
    writer = XmlWriter()
    for index in range(INSTANCE_CORPUS_SIZE):
        generator = InstanceGenerator(
            schema_set, fill_optional=True, repeat_unbounded=3 + index % 3
        )
        document = generator.generate(ROOT_NAME)
        if index % 40 == 39:
            add_unknown_child(document)
        (corpus / f"doc{index:04d}.xml").write_text(
            writer.to_string(document), encoding="utf-8"
        )

    def arm(engine: str, jobs: int):
        pipeline = ValidationPipeline(schema_set, engine=engine, jobs=jobs)
        return lambda: pipeline.run(corpus)

    return [
        ("validate_interpreted_serial", arm("interpreted", 1)),
        ("validate_compiled_serial", arm("compiled", 1)),
        ("validate_compiled_jobs4", arm("compiled", 4)),
    ]


def _instance_arm_stats(report) -> dict:
    return {"docs": report.docs_total, "invalid": report.docs_invalid}


def _serve_arm(repeats: int) -> dict:
    """The ``serve_validate`` arm: a fixed /validate load run, end to end.

    Boots an in-process :class:`~repro.serve.UpccServer`, registers the
    easybiz schema set over the wire, then times ``SERVE_REQUESTS``
    concurrent requests per repeat -- HTTP framing, queue admission and
    worker handoff are all inside the timed region.  ``median_ms`` is the
    wall time of one whole load run; ``rps``/``p95_ms`` ride along as
    informational stats (latency-derived, so never drift-noted by the
    gate; the sub-millisecond noise floor does not apply at this scale).
    """
    import statistics as stats_module

    from repro.instances import InstanceGenerator
    from repro.serve import ServeApp, ServeConfig, UpccServer
    from repro.serve.loadgen import request_json, run_load, scrape_server_quantiles

    catalog = build_easybiz_model()
    result = SchemaGenerator(
        catalog.model, GenerationOptions(validate_first=False)
    ).generate(catalog.doc_library, root=ROOT_NAME)
    schema_set = result.schema_set()
    generator = InstanceGenerator(schema_set, fill_optional=True)
    instance = generator.generate_string(ROOT_NAME)
    config = ServeConfig(workers=8, queue_size=256, timeout_s=60)
    with UpccServer(ServeApp(), config) as server:
        status, registered = request_json(
            server.url,
            "/validate",
            {
                "schemas": [item.to_string() for item in result.schemas.values()],
                "documents": ["<warmup/>"],
            },
        )
        if status != 200:
            raise RuntimeError(f"serve warmup failed: {registered}")
        payload = {
            "schema_set": registered["schema_set"],
            "documents": [
                {"name": f"doc{index}.xml", "xml": instance}
                for index in range(SERVE_DOCS_PER_REQUEST)
            ],
        }
        times = []
        outcome = None
        for _ in range(repeats):
            outcome = run_load(
                server.url, "/validate", payload,
                requests=SERVE_REQUESTS, concurrency=SERVE_CONCURRENCY,
            )
            if outcome.ok != SERVE_REQUESTS or outcome.dropped:
                raise RuntimeError(f"serve load run degraded: {outcome.to_json()}")
            times.append(outcome.elapsed_s)
        # Server-side tail from the bucketed /metrics exposition: the
        # daemon's own view of /validate latency, queue wait included but
        # client/network time excluded.
        server_side = scrape_server_quantiles(
            server.url, labels={"endpoint": "validate"}
        )
    arm = {
        "median_ms": round(stats_module.median(times) * 1000.0, 3),
        "requests": SERVE_REQUESTS,
        "rps": round(SERVE_REQUESTS / stats_module.median(times), 1),
        "p95_ms": round(outcome.percentile(95), 3),
        "p99_ms": round(outcome.percentile(99), 3),
    }
    if server_side is not None:
        arm["server_p50_ms"] = server_side["p50"]
        arm["server_p99_ms"] = server_side["p99"]
    return arm


def run_report(repeats: int) -> dict:
    """Measure all arms; returns the JSON-ready report."""
    import tempfile

    arms = {}
    for name, fn in _arms():
        median_s, result = _timed(fn, repeats)
        arms[name] = {"median_ms": round(median_s * 1000.0, 3), **_arm_stats(result)}
    with tempfile.TemporaryDirectory(prefix="bench_instances_") as corpus_root:
        for name, fn in _instance_arms(Path(corpus_root)):
            median_s, result = _timed(fn, repeats)
            arms[name] = {
                "median_ms": round(median_s * 1000.0, 3),
                **_instance_arm_stats(result),
            }
    arms["serve_validate"] = _serve_arm(repeats)
    return {
        "benchmark": "end_to_end_generation",
        "catalog": "easybiz",
        "root": ROOT_NAME,
        "repeats": repeats,
        "python": sys.version.split()[0],
        "arms": arms,
    }


def write_profile(path: Path, format: str) -> dict:
    """One traced pass per arm -> a span-tree profile file; returns summary.

    Runs *after* the timed passes so tracing overhead never touches the
    reported medians.
    """
    import tempfile

    import repro.obs as obs
    from repro.obs.prof import profile_from_tracer

    tracer = obs.configure(trace=True, ring_capacity=8192, reset_metrics=True)
    try:
        for _, fn in _arms():
            fn()
        with tempfile.TemporaryDirectory(prefix="bench_instances_") as corpus_root:
            for _, fn in _instance_arms(Path(corpus_root)):
                fn()
        profile = profile_from_tracer(tracer)
        path.write_text(profile.render(format, top=40) + "\n", encoding="utf-8")
    finally:
        obs.disable()
    return {"spans": profile.span_count, "paths": len(profile.nodes)}


def _git_commit() -> str | None:
    try:
        return subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=REPO_ROOT, capture_output=True, text=True, timeout=10, check=True,
        ).stdout.strip()
    except (OSError, subprocess.SubprocessError):
        return None


def append_history(path: Path, report: dict) -> None:
    """Append one trajectory line: the report stamped with time and commit."""
    entry = dict(report)
    entry["recorded_at"] = datetime.datetime.now(datetime.timezone.utc).isoformat(
        timespec="seconds"
    )
    commit = _git_commit()
    if commit:
        entry["git_commit"] = commit
    with path.open("a", encoding="utf-8") as handle:
        handle.write(json.dumps(entry, sort_keys=True) + "\n")


def main(argv: list[str] | None = None) -> int:
    """Entry point; writes the report and prints a one-line summary per arm."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repeats", type=int, default=7, help="timed runs per arm (default 7)")
    parser.add_argument(
        "--out",
        default=str(REPO_ROOT / "BENCH_end_to_end.json"),
        help="report file (default: BENCH_end_to_end.json at the repo root)",
    )
    parser.add_argument(
        "--history",
        default=str(REPO_ROOT / "BENCH_history.jsonl"),
        help="trajectory file to append this run to (default: BENCH_history.jsonl)",
    )
    parser.add_argument(
        "--no-history", action="store_true", help="skip appending to the history file"
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="compare the fresh medians against this committed report",
    )
    parser.add_argument(
        "--tolerance", type=float, default=30.0,
        help="soft tolerance in percent for --baseline comparison (default 30)",
    )
    parser.add_argument(
        "--profile-out",
        metavar="FILE",
        help="also write a span-tree profile of one traced pass per arm",
    )
    parser.add_argument(
        "--profile-format", choices=["table", "json", "collapsed"], default="collapsed",
        help="profile rendering for --profile-out (default: collapsed flamegraph stacks)",
    )
    args = parser.parse_args(argv)
    report = run_report(max(1, args.repeats))
    out = Path(args.out)
    out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    for name, arm in report["arms"].items():
        if "rps" in arm:
            print(
                f"{name}: {arm['median_ms']:.3f}ms median, {arm['requests']} "
                f"request(s), {arm['rps']:.1f} req/s, p95 {arm['p95_ms']:.3f}ms"
            )
        elif "docs" in arm:
            print(
                f"{name}: {arm['median_ms']:.3f}ms median, {arm['docs']} doc(s), "
                f"{arm['invalid']} invalid"
            )
        else:
            print(
                f"{name}: {arm['median_ms']:.3f}ms median, {arm['schemas']} schema(s), "
                f"{arm['bytes']} bytes, {arm['provenance_records']} provenance record(s)"
            )
    print(f"wrote {out}")
    if not args.no_history:
        history = Path(args.history)
        append_history(history, report)
        print(f"appended to {history}")
    if args.profile_out:
        profile_path = Path(args.profile_out)
        summary = write_profile(profile_path, args.profile_format)
        print(
            f"wrote {args.profile_format} profile ({summary['spans']} span(s), "
            f"{summary['paths']} path(s)) to {profile_path}"
        )
    if args.baseline:
        try:
            baseline = json.loads(Path(args.baseline).read_text(encoding="utf-8"))
        except (OSError, ValueError) as error:
            print(f"error: cannot read baseline {args.baseline}: {error}", file=sys.stderr)
            return 1
        print(f"== trajectory vs {args.baseline} (soft tolerance {args.tolerance:.0f}%) ==")
        print(
            render_deltas(
                compare_reports(
                    baseline, report,
                    warn_pct=args.tolerance, fail_pct=float("inf"),
                )
            )
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
