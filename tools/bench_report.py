#!/usr/bin/env python
"""Seed the perf trajectory: end-to-end generation medians to a JSON report.

Runs the easybiz catalog's full schema generation in three arms --

* **cold** -- a fresh :class:`SchemaGenerator` per run, no cache,
* **warm** -- fresh generators sharing a pre-warmed
  :class:`~repro.xsdgen.cache.GenerationCache` (a second CLI invocation
  or long-lived service),
* **parallel** -- cold builds with ``jobs=4`` (byte-identical output),

and writes ``BENCH_end_to_end.json`` at the repo root: per-arm median
milliseconds over ``--repeats`` runs plus schema/byte counts, so CI can
archive one small artifact per commit and the perf trajectory of the
generator is recorded instead of folklore.  Run directly::

    python tools/bench_report.py [--repeats N] [--out FILE]

The report asserts nothing; regressions are judged by comparing the
artifacts across commits (pytest-benchmark arms in ``benchmarks/`` keep
the hard thresholds).
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.catalog import build_easybiz_model  # noqa: E402
from repro.xsdgen import GenerationCache, GenerationOptions, SchemaGenerator  # noqa: E402

ROOT_NAME = "HoardingPermit"


def _timed(fn, repeats: int) -> tuple[float, object]:
    """(median seconds, last result) of ``repeats`` timed calls."""
    times = []
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        times.append(time.perf_counter() - start)
    return statistics.median(times), result


def _arm_stats(result) -> dict:
    texts = [generated.to_string() for generated in result.schemas.values()]
    return {
        "schemas": len(result.schemas),
        "bytes": sum(len(text.encode("utf-8")) for text in texts),
        "provenance_records": len(result.provenance),
    }


def run_report(repeats: int) -> dict:
    """Measure all arms; returns the JSON-ready report."""
    catalog = build_easybiz_model()
    model = catalog.model
    library = catalog.doc_library

    cold_options = GenerationOptions(validate_first=False)

    def cold():
        return SchemaGenerator(model, cold_options).generate(library, root=ROOT_NAME)

    cache = GenerationCache()
    warm_options = GenerationOptions(validate_first=False, use_cache=True)
    SchemaGenerator(model, warm_options, cache=cache).generate(library, root=ROOT_NAME)

    def warm():
        return SchemaGenerator(model, warm_options, cache=cache).generate(
            library, root=ROOT_NAME
        )

    parallel_options = GenerationOptions(validate_first=False, jobs=4)

    def parallel():
        return SchemaGenerator(model, parallel_options).generate(library, root=ROOT_NAME)

    arms = {}
    for name, fn in (("cold", cold), ("warm_cache", warm), ("parallel_jobs4", parallel)):
        median_s, result = _timed(fn, repeats)
        arms[name] = {"median_ms": round(median_s * 1000.0, 3), **_arm_stats(result)}
    return {
        "benchmark": "end_to_end_generation",
        "catalog": "easybiz",
        "root": ROOT_NAME,
        "repeats": repeats,
        "python": sys.version.split()[0],
        "arms": arms,
    }


def main(argv: list[str] | None = None) -> int:
    """Entry point; writes the report and prints a one-line summary per arm."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repeats", type=int, default=7, help="timed runs per arm (default 7)")
    parser.add_argument(
        "--out",
        default=str(REPO_ROOT / "BENCH_end_to_end.json"),
        help="report file (default: BENCH_end_to_end.json at the repo root)",
    )
    args = parser.parse_args(argv)
    report = run_report(max(1, args.repeats))
    out = Path(args.out)
    out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    for name, arm in report["arms"].items():
        print(
            f"{name}: {arm['median_ms']:.3f}ms median, {arm['schemas']} schema(s), "
            f"{arm['bytes']} bytes, {arm['provenance_records']} provenance record(s)"
        )
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
