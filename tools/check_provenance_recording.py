#!/usr/bin/env python
"""Lint: library builders must emit schema components through the recorder.

Every top-level XSD component a builder produces must carry a provenance
record (see :mod:`repro.xsdgen.provenance`), so the builder modules may
only append to a schema's item list through ``SchemaBuilder.emit`` --
never via a direct ``....items.append(...)`` (or ``items.extend`` /
``items +=``), which would produce an unexplainable construct.

The check is AST-based and scoped to the builder modules (the generator
core itself owns ``emit`` and is exempt).  Run directly::

    python tools/check_provenance_recording.py

or via the test suite (``tests/test_provenance_lint.py`` wires it as a
tier-1 test).
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

#: Builder modules (relative to src/repro/xsdgen) that must route all
#: top-level emission through SchemaBuilder.emit.
BUILDER_FILES = (
    "abie_types.py",
    "bie_library.py",
    "cdt_library.py",
    "doc_library.py",
    "enum_library.py",
    "qdt_library.py",
    "primitives.py",
)


def _is_items_attribute(node: ast.AST) -> bool:
    return isinstance(node, ast.Attribute) and node.attr == "items"


def find_violations(xsdgen_root: Path) -> list[str]:
    """Unrecorded emission sites as ``path:line reason`` strings."""
    violations: list[str] = []
    for name in BUILDER_FILES:
        path = xsdgen_root / name
        if not path.is_file():
            continue
        tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
        found: list[tuple[int, str]] = []
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ("append", "extend", "insert")
                and _is_items_attribute(node.func.value)
            ):
                found.append(
                    (
                        node.lineno,
                        f"{name}:{node.lineno} direct .items.{node.func.attr}() "
                        f"-- use SchemaBuilder.emit so provenance is recorded",
                    )
                )
            elif (
                isinstance(node, ast.AugAssign)
                and _is_items_attribute(node.target)
            ):
                found.append(
                    (
                        node.lineno,
                        f"{name}:{node.lineno} augmented assignment to .items "
                        f"-- use SchemaBuilder.emit so provenance is recorded",
                    )
                )
        violations.extend(message for _, message in sorted(found))
    return violations


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns 0 when clean, 1 when violations exist."""
    arguments = argv if argv is not None else sys.argv[1:]
    if arguments:
        xsdgen_root = Path(arguments[0])
    else:
        xsdgen_root = Path(__file__).resolve().parent.parent / "src" / "repro" / "xsdgen"
    violations = find_violations(xsdgen_root)
    if violations:
        print("unrecorded schema emission in builder modules:")
        for violation in violations:
            print(f"  {violation}")
        return 1
    print("OK: builder modules emit top-level components via the provenance recorder")
    return 0


if __name__ == "__main__":
    sys.exit(main())
