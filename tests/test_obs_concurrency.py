"""Concurrency guarantees: lossless metrics, cross-thread span parenting,
the small-model parallel fallback, and tracing's zero effect on output."""

import threading

import pytest

import repro.obs as obs
from repro.obs.metrics import MetricsRegistry, set_registry
from repro.obs.trace import Tracer, set_tracer
from repro.xsdgen import GenerationCache, GenerationOptions, SchemaGenerator


@pytest.fixture
def fresh_obs():
    """Fresh global tracer + registry, tracing on; both restored after."""
    previous_tracer = set_tracer(Tracer(enabled=False))
    previous_registry = set_registry(MetricsRegistry())
    tracer = obs.configure(trace=True)
    try:
        yield tracer
    finally:
        set_tracer(previous_tracer)
        set_registry(previous_registry)


def _schema_texts(result):
    return {name: generated.to_string() for name, generated in result.schemas.items()}


def _hammer(worker, threads=8):
    """Run ``worker(index)`` on ``threads`` threads, all released at once."""
    barrier = threading.Barrier(threads)

    def run(index):
        barrier.wait()
        worker(index)

    pool = [threading.Thread(target=run, args=(i,)) for i in range(threads)]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()


class TestMetricsUnderContention:
    THREADS = 8
    ROUNDS = 2_000

    def test_counter_loses_no_increments(self):
        registry = MetricsRegistry()
        _hammer(
            lambda _: [registry.counter("hammered").inc() for _ in range(self.ROUNDS)],
            threads=self.THREADS,
        )
        assert registry.counter("hammered").value == self.THREADS * self.ROUNDS

    def test_histogram_loses_no_observations(self):
        registry = MetricsRegistry()
        _hammer(
            lambda i: [
                registry.histogram("hammered_ms").observe(float(i + 1))
                for _ in range(self.ROUNDS)
            ],
            threads=self.THREADS,
        )
        histogram = registry.histogram("hammered_ms")
        assert histogram.count == self.THREADS * self.ROUNDS
        assert histogram.min == 1.0
        assert histogram.max == float(self.THREADS)
        expected_sum = self.ROUNDS * sum(range(1, self.THREADS + 1))
        assert histogram.total == pytest.approx(expected_sum)

    def test_instrument_creation_race_yields_one_instrument(self):
        registry = MetricsRegistry()
        _hammer(lambda _: registry.counter("raced").inc(), threads=self.THREADS)
        assert registry.counter("raced").value == self.THREADS
        assert registry.snapshot()["raced"] == self.THREADS


class TestCrossThreadSpanParenting:
    def _generate(self, easybiz, **option_kwargs):
        options = GenerationOptions(validate_first=False, **option_kwargs)
        return SchemaGenerator(easybiz.model, options).generate(
            easybiz.doc_library, root="HoardingPermit"
        )

    def test_worker_spans_parent_under_parallel(self, fresh_obs, easybiz):
        # min_parallel_libraries=0 disables the small-model fallback so the
        # pool genuinely runs; every library built in a worker thread must
        # still hang off xsdgen.parallel via the propagated context.
        self._generate(easybiz, jobs=4, min_parallel_libraries=0)
        roots = list(fresh_obs.ring_buffer().roots)
        assert [root.name for root in roots] == ["xsdgen.generate"]
        tree = roots[0]
        parallel_spans = tree.find("xsdgen.parallel")
        assert len(parallel_spans) == 1
        assert parallel_spans[0].attributes["mode"] == "threads"
        libraries = tree.find("xsdgen.library")
        assert libraries
        for span in libraries:
            ancestors = []
            walker = span.parent
            while walker is not None:
                ancestors.append(walker.name)
                walker = walker.parent
            assert "xsdgen.parallel" in ancestors, (
                f"library span {span.attributes.get('library')!r} escaped the "
                f"parallel span (ancestors: {ancestors})"
            )

    def test_no_orphan_roots_under_jobs(self, fresh_obs, easybiz):
        self._generate(easybiz, jobs=4, min_parallel_libraries=0)
        roots = [root.name for root in fresh_obs.ring_buffer().roots]
        assert roots == ["xsdgen.generate"], f"orphan span roots leaked: {roots}"

    def test_threaded_output_matches_serial(self, fresh_obs, easybiz):
        threaded = self._generate(easybiz, jobs=4, min_parallel_libraries=0)
        serial = self._generate(easybiz)
        assert _schema_texts(threaded) == _schema_texts(serial)


class TestParallelFallback:
    def _generate(self, easybiz, **option_kwargs):
        options = GenerationOptions(validate_first=False, **option_kwargs)
        return SchemaGenerator(easybiz.model, options).generate(
            easybiz.doc_library, root="HoardingPermit"
        )

    def test_small_model_takes_serial_path_by_default(self, fresh_obs, easybiz):
        # easybiz has 6 schema libraries < default threshold 2*jobs=8.
        self._generate(easybiz, jobs=4)
        assert obs.get_metrics().snapshot()["xsdgen.parallel_fallback"] == 1
        tree = fresh_obs.ring_buffer().roots[0]
        assert not tree.find("xsdgen.parallel")

    def test_fallback_output_matches_serial(self, easybiz):
        fallback = self._generate(easybiz, jobs=4)
        serial = self._generate(easybiz)
        assert _schema_texts(fallback) == _schema_texts(serial)

    def test_explicit_threshold_overrides_default(self, fresh_obs, easybiz):
        # 6 schema libraries >= 2 clears an explicit low bar: no fallback.
        self._generate(easybiz, jobs=4, min_parallel_libraries=2)
        snapshot = obs.get_metrics().snapshot()
        assert snapshot.get("xsdgen.parallel_fallback", 0) == 0

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            GenerationOptions(min_parallel_libraries=-1)

    def test_cache_contains_is_metrics_neutral(self, easybiz):
        previous_registry = set_registry(MetricsRegistry())
        try:
            cache = GenerationCache()
            options = GenerationOptions(validate_first=False, use_cache=True)
            SchemaGenerator(easybiz.model, options, cache=cache).generate(
                easybiz.doc_library, root="HoardingPermit"
            )
            snapshot = obs.get_metrics().snapshot()
            hits = snapshot.get("xsdgen.cache_hits", 0)
            misses = snapshot.get("xsdgen.cache_misses", 0)
            for key in cache.keys():
                assert cache.contains(key)
            assert not cache.contains("no-such-fingerprint")
            after = obs.get_metrics().snapshot()
            assert after.get("xsdgen.cache_hits", 0) == hits
            assert after.get("xsdgen.cache_misses", 0) == misses
        finally:
            set_registry(previous_registry)


class TestTracingDoesNotChangeOutput:
    def test_schema_bytes_identical_with_and_without_tracing(self, easybiz):
        def generate():
            return SchemaGenerator(
                easybiz.model, GenerationOptions(validate_first=False, jobs=4)
            ).generate(easybiz.doc_library, root="HoardingPermit")

        untraced = generate()
        previous = set_tracer(Tracer(enabled=False))
        obs.configure(trace=True, ring_capacity=4096)
        try:
            traced = generate()
        finally:
            obs.disable()
            set_tracer(previous)
        assert _schema_texts(traced) == _schema_texts(untraced)
