"""Unit tests for the validation engine mechanics and diagnostics."""

import pytest

from repro.validation.diagnostics import Diagnostic, Severity, ValidationReport
from repro.validation.engine import ValidationEngine, default_engine


class TestDiagnostics:
    def test_report_partitions(self):
        report = ValidationReport()
        report.error("X-1", "bad")
        report.warning("X-2", "meh")
        report.info("X-3", "fyi")
        assert len(report.errors) == 1
        assert len(report.warnings) == 1
        assert not report.ok

    def test_ok_without_errors(self):
        report = ValidationReport()
        report.warning("X", "meh")
        assert report.ok

    def test_summary_counts(self):
        report = ValidationReport()
        report.error("X", "bad")
        assert report.summary() == "1 error(s), 0 warning(s), 1 finding(s) total"

    def test_str_rendering(self):
        report = ValidationReport()
        assert "no findings" in str(report)
        report.error("X-1", "bad thing", "Model.Lib")
        assert str(report) == "ERROR X-1: bad thing [Model.Lib]"

    def test_extend_merges(self):
        a, b = ValidationReport(), ValidationReport()
        a.error("X", "1")
        b.warning("Y", "2")
        a.extend(b)
        assert len(a.diagnostics) == 2

    def test_diagnostic_str_without_location(self):
        diagnostic = Diagnostic(Severity.WARNING, "W", "careful")
        assert str(diagnostic) == "WARNING W: careful"


class TestEngine:
    def test_registration_and_run(self):
        engine = ValidationEngine()

        @engine.register("T-1", "always fires")
        def rule(model, report):
            report.error("T-1", "fired")

        report = engine.validate(None)
        assert [d.code for d in report.diagnostics] == ["T-1"]

    def test_duplicate_code_rejected(self):
        engine = ValidationEngine()
        engine.register("T-1", "a")(lambda m, r: None)
        with pytest.raises(ValueError):
            engine.register("T-1", "b")(lambda m, r: None)

    def test_basic_only_filters(self):
        engine = ValidationEngine()
        engine.register("B", "basic", basic=True)(lambda m, r: r.error("B", "x"))
        engine.register("F", "full")(lambda m, r: r.error("F", "x"))
        codes = {d.code for d in engine.validate(None, basic_only=True).diagnostics}
        assert codes == {"B"}

    def test_default_engine_has_basic_subset(self):
        engine = default_engine()
        basics = [rule for rule in engine.rules if rule.basic]
        assert basics and len(basics) < len(engine.rules)

    def test_rule_codes_in_registration_order(self):
        engine = default_engine()
        codes = engine.rule_codes()
        assert codes[0].startswith("UPCC-P")
