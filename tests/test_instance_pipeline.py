"""The compiled validator and the batch validation pipeline (ISSUE 7).

Two contracts under test:

* equivalence -- :class:`CompiledSchemaSet` produces exactly the problem
  list ``validate_instance`` produces, on valid, mutated and malformed
  documents of both catalog corpora (property-based over generator and
  mutation parameters);
* the pipeline -- corpus discovery, per-document fault isolation,
  byte-identical reports across engines and job counts, fail-fast,
  compilation caching and the CLI surface.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catalog.easybiz import build_easybiz_model
from repro.catalog.ecommerce import build_ecommerce_model
from repro.instances import (
    InstanceGenerator,
    ValidationPipeline,
    add_unknown_attribute,
    add_unknown_child,
    corrupt_enumeration_value,
    discover_corpus,
    drop_required_attribute,
    drop_required_child,
)
from repro.errors import InstanceValidationError
from repro.instances.pipeline import BatchReport, DocumentReport
from repro.xmlutil.writer import XmlWriter
from repro.xsd import (
    CompilationCache,
    CompiledSchemaSet,
    compile_schema_set,
    fingerprint_schema_set,
    get_compilation_cache,
    set_compilation_cache,
    validate_instance,
)
from repro.xsdgen import GenerationOptions, SchemaGenerator

ROOTS = {
    "easybiz": ("HoardingPermit", build_easybiz_model),
    "ecommerce": ("PurchaseOrder", build_ecommerce_model),
}

_MUTATIONS = [
    None,
    add_unknown_child,
    add_unknown_attribute,
    lambda root: corrupt_enumeration_value(root, "CountryName"),
    lambda root: drop_required_child(root, "IncludedRegistration"),
    lambda root: drop_required_attribute(root, "listAgencyID"),
]


@pytest.fixture(scope="module")
def corpora():
    """(schema_set, root_name) per catalog, built once for the module."""
    built = {}
    for name, (root, builder) in ROOTS.items():
        catalog = builder()
        result = SchemaGenerator(catalog.model, GenerationOptions()).generate(
            catalog.doc_library, root=root
        )
        built[name] = (result.schema_set(), root)
    return built


# -- compiled == interpreted equivalence ---------------------------------------


class TestCompiledEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(
        catalog=st.sampled_from(sorted(ROOTS)),
        fill_optional=st.booleans(),
        repeat_unbounded=st.integers(min_value=1, max_value=3),
        mutation=st.sampled_from(range(len(_MUTATIONS))),
    )
    def test_problem_lists_identical(
        self, corpora, catalog, fill_optional, repeat_unbounded, mutation
    ):
        """Same problems, same order, on valid and corrupted documents."""
        schema_set, root = corpora[catalog]
        compiled = compile_schema_set(schema_set)
        generator = InstanceGenerator(
            schema_set,
            fill_optional=fill_optional,
            repeat_unbounded=repeat_unbounded,
        )
        document = generator.generate(root)
        mutate = _MUTATIONS[mutation]
        if mutate is not None:
            mutate(document)
        text = XmlWriter().to_string(document)
        assert compiled.validate(text) == validate_instance(schema_set, text)

    @pytest.mark.parametrize(
        "document",
        [
            "<a><b></a>",
            "",
            "not xml at all",
            "<x:a/>",
            '<a xmlns="urn:nowhere"/>',
            "<a>text</a>",
        ],
    )
    def test_error_paths_identical(self, corpora, document):
        """Malformed and undeclared documents fail identically."""
        schema_set, _ = corpora["easybiz"]
        compiled = compile_schema_set(schema_set)

        def outcome(validate):
            try:
                return ("ok", validate())
            except InstanceValidationError as error:
                return ("error", str(error))

        assert outcome(lambda: compiled.validate(document)) == outcome(
            lambda: validate_instance(schema_set, document)
        )

    def test_accepts_xml_element_input(self, corpora):
        """The compiled engine also validates in-memory XmlElement trees."""
        schema_set, root = corpora["easybiz"]
        compiled = compile_schema_set(schema_set)
        document = InstanceGenerator(schema_set).generate(root)
        assert compiled.validate(document) == []
        drop_required_child(document, "IncludedRegistration")
        assert compiled.validate(document) == validate_instance(schema_set, document)


# -- fingerprints and the compilation cache ------------------------------------


class TestCompilationCache:
    def test_fingerprint_is_stable(self, corpora):
        schema_set, _ = corpora["easybiz"]
        assert fingerprint_schema_set(schema_set) == fingerprint_schema_set(schema_set)

    def test_fingerprint_distinguishes_schema_sets(self, corpora):
        easybiz_set, _ = corpora["easybiz"]
        ecommerce_set, _ = corpora["ecommerce"]
        assert fingerprint_schema_set(easybiz_set) != fingerprint_schema_set(
            ecommerce_set
        )

    def test_cache_hit_returns_same_compiled_instance(self, corpora):
        schema_set, _ = corpora["easybiz"]
        cache = CompilationCache(max_entries=4)
        first = compile_schema_set(schema_set, cache)
        second = compile_schema_set(schema_set, cache)
        assert first is second
        assert len(cache) == 1

    def test_cache_evicts_least_recently_used(self, corpora):
        easybiz_set, _ = corpora["easybiz"]
        ecommerce_set, _ = corpora["ecommerce"]
        cache = CompilationCache(max_entries=1)
        first = compile_schema_set(easybiz_set, cache)
        compile_schema_set(ecommerce_set, cache)
        assert len(cache) == 1
        assert compile_schema_set(easybiz_set, cache) is not first

    def test_default_cache_is_process_wide(self, corpora):
        schema_set, _ = corpora["easybiz"]
        previous = set_compilation_cache(CompilationCache())
        try:
            assert compile_schema_set(schema_set) is compile_schema_set(schema_set)
            assert len(get_compilation_cache()) == 1
        finally:
            set_compilation_cache(previous)


# -- corpus discovery ----------------------------------------------------------


class TestDiscoverCorpus:
    def test_directory_is_recursive_and_sorted(self, tmp_path):
        (tmp_path / "sub").mkdir()
        (tmp_path / "b.xml").write_text("<b/>", encoding="utf-8")
        (tmp_path / "a.xml").write_text("<a/>", encoding="utf-8")
        (tmp_path / "sub" / "c.xml").write_text("<c/>", encoding="utf-8")
        (tmp_path / "notes.txt").write_text("not xml", encoding="utf-8")
        found = discover_corpus(tmp_path)
        assert [path.name for path in found] == ["a.xml", "b.xml", "c.xml"]

    def test_single_xml_file(self, tmp_path):
        doc = tmp_path / "only.xml"
        doc.write_text("<only/>", encoding="utf-8")
        assert discover_corpus(doc) == [doc]

    def test_manifest_resolves_relative_paths_and_comments(self, tmp_path):
        (tmp_path / "one.xml").write_text("<one/>", encoding="utf-8")
        (tmp_path / "two.xml").write_text("<two/>", encoding="utf-8")
        manifest = tmp_path / "corpus.lst"
        manifest.write_text(
            "# a comment\none.xml\n\ntwo.xml\n", encoding="utf-8"
        )
        found = discover_corpus(manifest)
        assert [path.name for path in found] == ["one.xml", "two.xml"]
        assert all(path.is_absolute() for path in found)

    def test_missing_corpus_raises(self, tmp_path):
        with pytest.raises(InstanceValidationError, match="corpus not found"):
            discover_corpus(tmp_path / "nope")


# -- the pipeline --------------------------------------------------------------


def _write_corpus(schema_set, root, directory, count=8, invalid_every=4):
    writer = XmlWriter()
    for index in range(count):
        generator = InstanceGenerator(
            schema_set,
            fill_optional=(index % 2 == 0),
            repeat_unbounded=1 + index % 3,
        )
        document = generator.generate(root)
        if index % invalid_every == invalid_every - 1:
            add_unknown_child(document)
        (directory / f"doc{index:03d}.xml").write_text(
            writer.to_string(document), encoding="utf-8"
        )


class TestValidationPipeline:
    def test_reports_byte_identical_across_engines_and_jobs(
        self, corpora, tmp_path
    ):
        schema_set, root = corpora["easybiz"]
        _write_corpus(schema_set, root, tmp_path)
        serialized = {
            json.dumps(
                ValidationPipeline(schema_set, engine=engine, jobs=jobs)
                .run(tmp_path)
                .to_json(),
                sort_keys=True,
            )
            for engine in ("compiled", "interpreted")
            for jobs in (1, 4)
        }
        assert len(serialized) == 1

    def test_fault_isolation_never_aborts_the_batch(self, corpora, tmp_path):
        schema_set, root = corpora["easybiz"]
        _write_corpus(schema_set, root, tmp_path, count=3, invalid_every=100)
        (tmp_path / "malformed.xml").write_text("<a><b></a>", encoding="utf-8")
        manifest = tmp_path / "all.lst"
        manifest.write_text(
            "\n".join(
                [path.name for path in sorted(tmp_path.glob("*.xml"))]
                + ["missing.xml"]
            ),
            encoding="utf-8",
        )
        report = ValidationPipeline(schema_set).run(manifest)
        assert report.docs_total == 5
        by_name = {doc.path.rsplit("/", 1)[-1]: doc for doc in report.documents}
        assert by_name["malformed.xml"].error is not None
        assert "not well-formed" in by_name["malformed.xml"].error
        assert by_name["missing.xml"].error is not None
        assert report.docs_invalid == 2

    def test_fail_fast_stops_at_first_invalid(self, corpora, tmp_path):
        schema_set, root = corpora["easybiz"]
        _write_corpus(schema_set, root, tmp_path, count=6, invalid_every=3)
        report = ValidationPipeline(schema_set, fail_fast=True, jobs=4).run(tmp_path)
        # doc002 is the first invalid one; nothing after it was validated.
        assert [doc.path.rsplit("/", 1)[-1] for doc in report.documents] == [
            "doc000.xml",
            "doc001.xml",
            "doc002.xml",
        ]
        assert not report.documents[-1].ok

    def test_report_shape(self, corpora, tmp_path):
        schema_set, root = corpora["easybiz"]
        _write_corpus(schema_set, root, tmp_path, count=2, invalid_every=2)
        report = ValidationPipeline(schema_set).run(tmp_path)
        assert isinstance(report, BatchReport)
        assert all(isinstance(doc, DocumentReport) for doc in report.documents)
        payload = report.to_json()
        assert set(payload) == {"docs_total", "docs_invalid", "documents"}
        assert payload["docs_total"] == 2
        assert payload["docs_invalid"] == 1
        invalid = payload["documents"][1]
        assert invalid["ok"] is False
        assert invalid["problems"], "expected located problems in the JSON report"
        text = report.to_text()
        assert "INVALID" in text and "2 document(s), 1 invalid" in text

    def test_unknown_engine_rejected(self, corpora):
        schema_set, _ = corpora["easybiz"]
        with pytest.raises(ValueError, match="unknown engine"):
            ValidationPipeline(schema_set, engine="quantum")

    def test_metrics_recorded(self, corpora, tmp_path):
        from repro.obs.metrics import MetricsRegistry, set_registry

        schema_set, root = corpora["easybiz"]
        _write_corpus(schema_set, root, tmp_path, count=4, invalid_every=4)
        fresh = MetricsRegistry()
        previous = set_registry(fresh)
        try:
            ValidationPipeline(schema_set).run(tmp_path)
        finally:
            set_registry(previous)
        snapshot = fresh.snapshot()
        assert snapshot["instances.docs_total"] == 4
        assert snapshot["instances.docs_invalid"] == 1
        assert snapshot["instances.validate_ms"]["count"] == 4


# -- the CLI surface -----------------------------------------------------------


class TestValidateInstancesCli:
    @pytest.fixture()
    def cli_fixture(self, corpora, easybiz_result, tmp_path):
        schema_set, root = corpora["easybiz"]
        schemas_dir = tmp_path / "schemas"
        easybiz_result.write_to(schemas_dir)
        corpus_dir = tmp_path / "corpus"
        corpus_dir.mkdir()
        _write_corpus(schema_set, root, corpus_dir, count=4, invalid_every=100)
        return schemas_dir, corpus_dir

    def test_exit_zero_when_all_valid(self, cli_fixture, capsys):
        from repro.cli import main

        schemas_dir, corpus_dir = cli_fixture
        status = main(["validate-instances", str(schemas_dir), str(corpus_dir)])
        assert status == 0
        out = capsys.readouterr().out
        assert "4 document(s), 0 invalid" in out

    def test_exit_one_and_json_report_on_invalid(self, cli_fixture, capsys):
        from repro.cli import main

        schemas_dir, corpus_dir = cli_fixture
        (corpus_dir / "zz_bad.xml").write_text("<a><b></a>", encoding="utf-8")
        status = main(
            [
                "validate-instances",
                str(schemas_dir),
                str(corpus_dir),
                "--jobs",
                "4",
                "--report",
                "json",
            ]
        )
        assert status == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["docs_total"] == 5
        assert payload["docs_invalid"] == 1
        assert payload["documents"][-1]["error"]

    def test_interpreted_engine_output_matches_compiled(self, cli_fixture, capsys):
        from repro.cli import main

        schemas_dir, corpus_dir = cli_fixture
        outputs = []
        for engine in ("compiled", "interpreted"):
            main(
                [
                    "validate-instances",
                    str(schemas_dir),
                    str(corpus_dir),
                    "--engine",
                    engine,
                    "--report",
                    "json",
                ]
            )
            outputs.append(capsys.readouterr().out)
        assert outputs[0] == outputs[1]
