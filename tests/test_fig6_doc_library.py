"""Figure 6: the generated DOCLibrary schema for HoardingPermit.

Every structural fact visible in the paper's Figure 6 is asserted here:
namespaces and prefixes, the four imports in order, the HoardingPermitType
sequence contents (names, types, multiplicities, order) and the global root
element.
"""

import pytest

from repro.xmlutil.qname import QName

DOC_NS = "urn:au:gov:vic:easybiz:data:draft:EB005-HoardingPermit"
CDT_NS = "urn:au:gov:vic:easybiz:types:draft:coredatatypes"
QDT_NS = "urn:au:gov:vic:easybiz:types:draft:CommonDataTypes"
COMMON_NS = "urn:au:gov:vic:easybiz:data:draft:CommonAggregates"
LOCAL_LAW_NS = "urn:au:gov:vic:easybiz:data:draft:LocalLawAggregates"


@pytest.fixture
def doc_schema(easybiz_result):
    return easybiz_result.root.schema


class TestSchemaHeader:
    def test_target_namespace(self, doc_schema):
        assert doc_schema.target_namespace == DOC_NS

    def test_form_defaults(self, doc_schema):
        assert doc_schema.element_form_default == "qualified"
        assert doc_schema.attribute_form_default == "unqualified"

    def test_prefixes_match_figure6(self, doc_schema):
        assert doc_schema.prefixes["doc"] == DOC_NS
        assert doc_schema.prefixes["cdt1"] == CDT_NS
        assert doc_schema.prefixes["qdt1"] == QDT_NS
        assert doc_schema.prefixes["commonAggregates"] == COMMON_NS
        assert doc_schema.prefixes["bie2"] == LOCAL_LAW_NS

    def test_version_attribute(self, doc_schema):
        assert doc_schema.version == "0.4"


class TestImports:
    def test_four_imports_in_figure6_order(self, doc_schema):
        assert [imp.namespace for imp in doc_schema.imports] == [
            CDT_NS, QDT_NS, COMMON_NS, LOCAL_LAW_NS,
        ]

    def test_schema_locations(self, doc_schema):
        locations = {imp.namespace: imp.schema_location for imp in doc_schema.imports}
        assert locations[CDT_NS] == "../urn_au_gov_vic_easybiz_/types_draft_coredatatypes_1.0.xsd"
        assert locations[COMMON_NS] == "../urn_au_gov_vic_easybiz_/data_draft_CommonAggregates_0.1.xsd"
        assert locations[LOCAL_LAW_NS] == "../urn_au_gov_vic_easybiz_/data_draft_LocalLawAggregates_0.1.xsd"


class TestHoardingPermitType:
    def _elements(self, doc_schema):
        return doc_schema.complex_type("HoardingPermitType").particle.particles

    def test_element_order_matches_figure6(self, doc_schema):
        names = [el.name for el in self._elements(doc_schema)]
        assert names == [
            "ClosureReason",
            "IsClosedFootpath",
            "IsClosedRoad",
            "SafetyPrecaution",
            "IncludedAttachment",
            "CurrentApplication",
            "IncludedRegistration",
            "BillingPerson_Identification",
        ]

    def test_bbie_types(self, doc_schema):
        by_name = {el.name: el for el in self._elements(doc_schema)}
        assert by_name["ClosureReason"].type == QName(CDT_NS, "TextType")
        assert by_name["SafetyPrecaution"].type == QName(CDT_NS, "TextType")
        # Figure 6 line 9 prints cdt1:Indicator_CodeType, but Indicator_Code
        # is a QDT (Figure 4); we follow the model, see EXPERIMENTS.md.
        assert by_name["IsClosedFootpath"].type == QName(QDT_NS, "Indicator_CodeType")
        assert by_name["IsClosedRoad"].type == QName(QDT_NS, "Indicator_CodeType")

    def test_asbie_types(self, doc_schema):
        by_name = {el.name: el for el in self._elements(doc_schema)}
        assert by_name["IncludedAttachment"].type == QName(COMMON_NS, "AttachmentType")
        assert by_name["CurrentApplication"].type == QName(COMMON_NS, "ApplicationType")
        assert by_name["IncludedRegistration"].type == QName(LOCAL_LAW_NS, "RegistrationType")
        assert by_name["BillingPerson_Identification"].type == QName(COMMON_NS, "Person_IdentificationType")

    def test_multiplicities_match_figure6(self, doc_schema):
        by_name = {el.name: el for el in self._elements(doc_schema)}
        for optional in ("ClosureReason", "IsClosedFootpath", "IsClosedRoad",
                         "SafetyPrecaution", "CurrentApplication", "BillingPerson_Identification"):
            assert by_name[optional].min_occurs == 0, optional
            assert by_name[optional].max_occurs == 1, optional
        assert by_name["IncludedAttachment"].min_occurs == 0
        assert by_name["IncludedAttachment"].max_occurs is None
        assert by_name["IncludedRegistration"].min_occurs == 1
        assert by_name["IncludedRegistration"].max_occurs == 1


class TestRootElement:
    def test_single_global_root(self, doc_schema):
        elements = doc_schema.global_elements
        assert [el.name for el in elements] == ["HoardingPermit"]
        assert elements[0].type == QName(DOC_NS, "HoardingPermitType")

    def test_root_element_is_last_item(self, doc_schema):
        assert doc_schema.items[-1].name == "HoardingPermit"


class TestRootSelection:
    def test_unused_local_abie_not_generated(self, doc_schema):
        # HoardingDetails is defined in the DOCLibrary but unreachable from
        # the root; Figure 6 contains no HoardingDetailsType.
        names = [ct.name for ct in doc_schema.complex_types]
        assert names == ["HoardingPermitType"]

    def test_unknown_root_aborts(self, easybiz):
        from repro.errors import GenerationError
        from repro.xsdgen import SchemaGenerator

        with pytest.raises(GenerationError, match="not defined"):
            SchemaGenerator(easybiz.model).generate(easybiz.doc_library, root="Nope")

    def test_ambiguous_root_requires_selection(self, easybiz):
        from repro.errors import GenerationError
        from repro.xsdgen import SchemaGenerator

        with pytest.raises(GenerationError, match="select a root element"):
            SchemaGenerator(easybiz.model).generate(easybiz.doc_library)

    def test_rendered_text_is_stable(self, easybiz, easybiz_result):
        from repro.xsdgen import SchemaGenerator

        again = SchemaGenerator(easybiz.model).generate(easybiz.doc_library, root="HoardingPermit")
        assert again.root.to_string() == easybiz_result.root.to_string()
