"""Unit tests for URN construction, file naming and prefix allocation."""

import pytest

from repro.ccts.model import CctsModel
from repro.ndr.namespaces import (
    LibraryNamespace,
    NamespacePolicy,
    PrefixAllocator,
    library_kind_token,
    prefix_stem,
)
from repro.profile import BIE_LIBRARY, CDT_LIBRARY, DOC_LIBRARY, QDT_LIBRARY


def _library(kind="BIELibrary", name="CommonAggregates", prefix=None, version="0.1", status="draft"):
    model = CctsModel("M")
    business = model.add_business_library("B", "urn:au:gov:vic:easybiz")
    tags = {"version": version, "status": status}
    if prefix:
        tags["namespacePrefix"] = prefix
    adders = {
        "BIELibrary": business.add_bie_library,
        "DOCLibrary": business.add_doc_library,
        "CDTLibrary": business.add_cdt_library,
        "QDTLibrary": business.add_qdt_library,
        "ENUMLibrary": business.add_enum_library,
    }
    return adders[kind](name, **tags)


class TestKindTokens:
    def test_data_kinds(self):
        for stereotype in (BIE_LIBRARY, DOC_LIBRARY):
            assert library_kind_token(stereotype) == "data"

    def test_types_kinds(self):
        for stereotype in (CDT_LIBRARY, QDT_LIBRARY):
            assert library_kind_token(stereotype) == "types"

    def test_prefix_stems(self):
        assert prefix_stem(CDT_LIBRARY) == "cdt"
        assert prefix_stem(QDT_LIBRARY) == "qdt"
        assert prefix_stem(BIE_LIBRARY) == "bie"
        assert prefix_stem(DOC_LIBRARY) == "doc"


class TestNamespacePolicy:
    def test_figure6_doc_namespace(self):
        library = _library("DOCLibrary", "EB005-HoardingPermit", version="0.4")
        ns = NamespacePolicy().namespace_for(library)
        assert ns.urn == "urn:au:gov:vic:easybiz:data:draft:EB005-HoardingPermit"
        assert ns.folder == "urn_au_gov_vic_easybiz_"
        assert ns.file_name == "data_draft_EB005-HoardingPermit_0.4.xsd"
        assert ns.location == "../urn_au_gov_vic_easybiz_/data_draft_EB005-HoardingPermit_0.4.xsd"

    def test_figure6_cdt_schema_location(self):
        library = _library("CDTLibrary", "coredatatypes", version="1.0")
        ns = NamespacePolicy().namespace_for(library)
        assert ns.file_name == "types_draft_coredatatypes_1.0.xsd"

    def test_version_in_urn_variant(self):
        library = _library("CDTLibrary", "coredatatypes", version="1.0")
        ns = NamespacePolicy(include_version_in_urn=True).namespace_for(library)
        assert ns.urn.endswith(":types:draft:coredatatypes:1.0")
        assert ns.file_name == "types_draft_coredatatypes_1.0.xsd"

    def test_status_token(self):
        library = _library("BIELibrary", "Std", status="standard")
        ns = NamespacePolicy().namespace_for(library)
        assert ":standard:" in ns.urn

    def test_preferred_prefix_carried(self):
        library = _library(prefix="commonAggregates")
        ns = NamespacePolicy().namespace_for(library)
        assert ns.preferred_prefix == "commonAggregates"


class TestPrefixAllocator:
    def _ns(self, urn, stereotype=BIE_LIBRARY, preferred=None):
        return LibraryNamespace(urn, "f", "x.xsd", preferred, stereotype)

    def test_user_prefix_used(self):
        allocator = PrefixAllocator()
        assert allocator.allocate(self._ns("urn:a", preferred="common")) == "common"

    def test_counter_counts_user_prefixed_libraries_too(self):
        # Figure 6: commonAggregates is the 1st BIELibrary, LocalLaw the 2nd
        # -> generated prefix "bie2".
        allocator = PrefixAllocator()
        allocator.allocate(self._ns("urn:a", preferred="commonAggregates"))
        assert allocator.allocate(self._ns("urn:b")) == "bie2"

    def test_counters_are_per_stem(self):
        allocator = PrefixAllocator()
        assert allocator.allocate(self._ns("urn:a", CDT_LIBRARY)) == "cdt1"
        assert allocator.allocate(self._ns("urn:b", QDT_LIBRARY)) == "qdt1"
        assert allocator.allocate(self._ns("urn:c", CDT_LIBRARY)) == "cdt2"

    def test_stable_per_namespace(self):
        allocator = PrefixAllocator()
        first = allocator.allocate(self._ns("urn:a"))
        again = allocator.allocate(self._ns("urn:a"))
        assert first == again

    def test_collision_with_reserved_falls_back(self):
        allocator = PrefixAllocator()
        allocator.reserve("common", "urn:self")
        assert allocator.allocate(self._ns("urn:a", preferred="common")) == "bie1"

    def test_generated_collision_skips_taken(self):
        allocator = PrefixAllocator()
        allocator.reserve("bie1", "urn:self")
        assert allocator.allocate(self._ns("urn:a")) == "bie2"


class TestAnnotations:
    def test_entries_contain_mandatory_fields(self):
        from repro.ndr.annotations import annotation_entries_for
        from repro.ccts.model import CctsModel

        model = CctsModel("M")
        business = model.add_business_library("B", "urn:b")
        bies = business.add_bie_library("L")
        abie = bies.add_abie("Thing")
        abie.element.apply_stereotype("ABIE", definition="a thing", version="2.1")
        entries = dict(annotation_entries_for(abie, "ABIE", "Thing. Details"))
        assert entries["AcronymCode"] == "ABIE"
        assert entries["Version"] == "2.1"
        assert entries["Definition"] == "a thing"
        assert entries["DictionaryEntryName"] == "Thing. Details"

    def test_defaults_when_unset(self):
        from repro.ndr.annotations import annotation_entries_for
        from repro.ccts.model import CctsModel

        model = CctsModel("M")
        business = model.add_business_library("B", "urn:b")
        bies = business.add_bie_library("L")
        abie = bies.add_abie("Bare")
        entries = dict(annotation_entries_for(abie, "ABIE"))
        assert entries["Version"] == "1.0"
        assert "Definition" in entries
