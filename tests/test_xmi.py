"""Unit tests for XMI serialization and loading."""

import pytest

from repro.ccts.model import CctsModel
from repro.errors import XmiError
from repro.interchange import diff_models
from repro.uml.classifier import Enumeration
from repro.xmi import model_from_xmi, read_xmi, write_xmi
from repro.xmi.ids import assign_ids
from repro.xmlutil.writer import parse_xml


class TestWriter:
    def test_document_shape(self, figure1):
        text = write_xmi(figure1.model.model)
        assert text.startswith('<?xml version="1.0" encoding="UTF-8"?>\n<xmi:XMI')
        assert 'xmi:version="2.1"' in text
        assert "<uml:Model" in text
        assert 'xmi:type="uml:Class"' in text
        assert "<upcc:ACC" in text

    def test_stereotype_tags_serialized(self, easybiz):
        text = write_xmi(easybiz.model.model)
        assert 'namespacePrefix="commonAggregates"' in text
        assert 'baseURN="urn:au:gov:vic:easybiz"' in text

    def test_ids_are_stable_across_writes(self, figure1):
        first = write_xmi(figure1.model.model)
        second = write_xmi(figure1.model.model)
        assert first == second

    def test_assign_ids_respects_existing(self, figure1):
        model = figure1.model.model
        model.xmi_id = "custom_root"
        mapping = assign_ids(model)
        assert mapping[id(model)] == "custom_root"
        assert len(set(mapping.values())) == len(mapping)

    def test_write_to_file(self, figure1, tmp_path):
        path = tmp_path / "m.xmi"
        text = write_xmi(figure1.model.model, path)
        assert path.read_text(encoding="utf-8") == text


class TestRoundTrip:
    def test_figure1_round_trip_identity(self, figure1):
        once = write_xmi(figure1.model.model)
        again = write_xmi(read_xmi(once))
        assert once == again

    def test_easybiz_round_trip_identity(self, easybiz):
        once = write_xmi(easybiz.model.model)
        again = write_xmi(read_xmi(once))
        assert once == again

    def test_round_trip_preserves_structure(self, easybiz):
        reloaded = CctsModel(model=read_xmi(write_xmi(easybiz.model.model)))
        assert diff_models(easybiz.model, reloaded) == []

    def test_round_trip_preserves_enum_values(self, easybiz):
        reloaded = read_xmi(write_xmi(easybiz.model.model))
        enums = [e for e in reloaded.all_of_type(Enumeration) if e.name == "CountryType_Code"]
        assert enums[0].literals[0].value == "United States of America"

    def test_round_trip_preserves_aggregation_kinds(self, easybiz):
        from repro.uml.association import AggregationKind, Association

        reloaded = read_xmi(write_xmi(easybiz.model.model))
        shared = [
            a for a in reloaded.all_of_type(Association)
            if a.target.name == "Assigned"
        ]
        assert shared[0].aggregation is AggregationKind.SHARED

    def test_reloaded_model_generates_identical_schemas(self, easybiz, easybiz_result):
        from repro.xsdgen import SchemaGenerator

        reloaded = CctsModel(model=read_xmi(write_xmi(easybiz.model.model)))
        result = SchemaGenerator(reloaded).generate(
            reloaded.library_named("EB005-HoardingPermit"), root="HoardingPermit"
        )
        assert result.root.to_string() == easybiz_result.root.to_string()

    def test_documentation_preserved(self):
        model = CctsModel("Doc")
        business = model.add_business_library("B", "urn:doc")
        library = business.add_cc_library("L")
        acc = library.add_acc("Thing")
        acc.element.documentation = "a documented thing"
        reloaded = read_xmi(write_xmi(model.model))
        thing = reloaded.find_classifier_anywhere("Thing")
        assert thing.documentation == "a documented thing"


class TestSourceClassification:
    """``read_xmi`` accepts a file path or literal XML content."""

    def test_path_instance_always_read_from_disk(self, figure1, tmp_path):
        from pathlib import Path

        target = tmp_path / "model.xmi"
        write_xmi(figure1.model.model, target)
        model = read_xmi(Path(target))
        assert model.name == "Figure1"

    def test_existing_file_with_xml_suffix_read_from_disk(self, figure1, tmp_path):
        # An XMI document stored as model.xml must be read as a file, not
        # parsed as literal XML text.
        target = tmp_path / "model.xml"
        write_xmi(figure1.model.model, target)
        model = read_xmi(str(target))
        assert model.name == "Figure1"

    def test_literal_xml_with_leading_whitespace_is_content(self, figure1):
        # Strip the XML declaration (which must sit at offset zero) so the
        # document tolerates the leading whitespace under test.
        text = write_xmi(figure1.model.model).split("\n", 1)[1]
        assert read_xmi("\n  " + text).name == "Figure1"

    def test_missing_xmi_path_raises_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            read_xmi(str(tmp_path / "does_not_exist.xmi"))

    def test_load_xmi_accepts_paths_too(self, figure1, tmp_path):
        from repro.xmi import load_xmi

        target = tmp_path / "model.xml"
        write_xmi(figure1.model.model, target)
        result = load_xmi(str(target))
        assert result.ok
        assert result.model.name == "Figure1"


class TestReaderErrors:
    def test_non_xmi_root_rejected(self):
        with pytest.raises(XmiError):
            model_from_xmi(parse_xml("<notxmi/>"))

    def test_missing_model_rejected(self):
        with pytest.raises(XmiError):
            model_from_xmi(parse_xml('<xmi:XMI xmlns:xmi="http://www.omg.org/XMI"/>'))

    def test_duplicate_id_rejected(self, figure1):
        text = write_xmi(figure1.model.model)
        corrupted = text.replace('xmi:id="id_2"', 'xmi:id="id_1"', 1)
        with pytest.raises(XmiError, match="duplicate"):
            read_xmi(corrupted)

    def test_dangling_type_reference_rejected(self, figure1):
        text = write_xmi(figure1.model.model)
        corrupted = text.replace('type="id_', 'type="missing_', 1)
        with pytest.raises(XmiError):
            read_xmi(corrupted)

    def test_unknown_packaged_element_rejected(self, figure1):
        text = write_xmi(figure1.model.model)
        corrupted = text.replace('xmi:type="uml:Class"', 'xmi:type="uml:Actor"', 1)
        with pytest.raises(XmiError, match="unsupported"):
            read_xmi(corrupted)

    def test_stereotype_on_unknown_base_rejected(self, figure1):
        text = write_xmi(figure1.model.model)
        corrupted = text.replace('<upcc:ACC base="', '<upcc:ACC base="gone_', 1)
        with pytest.raises(XmiError, match="unknown id"):
            read_xmi(corrupted)
