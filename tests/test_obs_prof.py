"""Span-tree profiling: aggregation, renderings, CPU capture, cProfile attach."""

import json

import pytest

from repro.obs.prof import (
    Profile,
    build_profile,
    cprofile_session,
    cprofile_stats_text,
    profile_from_tracer,
)
from repro.obs.trace import RingBufferSink, Span, Tracer, set_tracer


def _span(name, wall_ms, cpu_ms=None, children=()):
    """A finished span with exact timings (profiles need controlled input)."""
    made = Span(name=name)
    made.started_at = 0.0
    made.ended_at = wall_ms / 1000.0
    made.cpu_ns = int((cpu_ms if cpu_ms is not None else wall_ms) * 1e6)
    for child in children:
        child.parent = made
        made.children.append(child)
    return made


@pytest.fixture
def tracer():
    fresh = Tracer(enabled=True)
    previous = set_tracer(fresh)
    try:
        yield fresh
    finally:
        set_tracer(previous)


class TestAggregation:
    def test_counts_and_totals_per_path(self):
        root = _span(
            "generate",
            10.0,
            children=[_span("library", 3.0), _span("library", 5.0)],
        )
        profile = build_profile([root])
        assert profile.span_count == 3
        node = profile.nodes[("generate", "library")]
        assert node.count == 2
        assert node.wall_ms == pytest.approx(8.0)
        assert node.min_ms == pytest.approx(3.0)
        assert node.max_ms == pytest.approx(5.0)

    def test_self_time_subtracts_children(self):
        root = _span("generate", 10.0, children=[_span("library", 4.0)])
        profile = build_profile([root])
        assert profile.nodes[("generate",)].self_wall_ms == pytest.approx(6.0)
        assert profile.nodes[("generate", "library")].self_wall_ms == pytest.approx(4.0)

    def test_self_time_clamps_at_zero(self):
        # Clock granularity can make children sum past the parent.
        root = _span("generate", 3.0, children=[_span("library", 5.0)])
        profile = build_profile([root])
        assert profile.nodes[("generate",)].self_wall_ms == 0.0

    def test_same_name_different_parents_stay_separate(self):
        roots = [
            _span("generate", 4.0, children=[_span("library", 2.0)]),
            _span("parallel", 4.0, children=[_span("library", 2.0)]),
        ]
        profile = build_profile(roots)
        assert ("generate", "library") in profile.nodes
        assert ("parallel", "library") in profile.nodes
        assert profile.nodes[("generate", "library")].count == 1

    def test_cpu_split_tracked_independently(self):
        # 10ms wall / 2ms CPU: a span that mostly waited.
        root = _span("generate", 10.0, cpu_ms=2.0, children=[_span("library", 4.0, cpu_ms=1.0)])
        profile = build_profile([root])
        node = profile.nodes[("generate",)]
        assert node.cpu_ms == pytest.approx(2.0)
        assert node.self_cpu_ms == pytest.approx(1.0)
        assert node.self_wall_ms == pytest.approx(6.0)

    def test_multiple_trees_accumulate(self):
        profile = Profile()
        for _ in range(3):
            profile.add_span_tree(_span("generate", 2.0))
        assert profile.nodes[("generate",)].count == 3
        assert profile.span_count == 3


class TestRenderings:
    def _profile(self):
        return build_profile(
            [
                _span(
                    "generate",
                    10.0,
                    children=[_span("library", 3.0), _span("library", 5.0)],
                )
            ]
        )

    def test_table_orders_hottest_first(self):
        table = self._profile().render_table(top=10)
        lines = table.splitlines()
        assert lines[0].strip().startswith("count")
        # library self (8ms) beats generate self (2ms).
        assert "generate;library" in lines[2]
        assert lines[-1].startswith("(2 path(s), 3 span(s)")

    def test_table_top_limits_rows(self):
        table = self._profile().render_table(top=1)
        assert "generate;library" in table
        body = [line for line in table.splitlines()[2:-1]]
        assert len(body) == 1

    def test_json_round_trips_deterministically(self):
        profile = self._profile()
        first = json.loads(profile.render_json())
        second = json.loads(profile.render_json())
        assert first == second
        assert first["span_count"] == 3
        stacks = [node["stack"] for node in first["nodes"]]
        assert stacks == ["generate", "generate;library"]

    def test_collapsed_lines_use_self_wall_microseconds(self):
        collapsed = self._profile().to_collapsed()
        assert collapsed.splitlines() == [
            "generate 2000",
            "generate;library 8000",
        ]

    def test_render_dispatches_all_formats(self):
        profile = self._profile()
        assert profile.render("table").startswith(" count") or "count" in profile.render("table")
        assert json.loads(profile.render("json"))
        assert "generate" in profile.render("collapsed")
        with pytest.raises(ValueError):
            profile.render("svg")

    def test_sorted_nodes_rejects_unknown_key(self):
        with pytest.raises(ValueError):
            self._profile().sorted_nodes(by="latency")

    def test_empty_profile_renders(self):
        assert build_profile([]).render_table() == "(no spans profiled)"
        assert build_profile([]).to_collapsed() == ""


class TestTracerIntegration:
    def test_profile_from_tracer_folds_ring_buffer(self, tracer):
        tracer.add_sink(RingBufferSink())
        for _ in range(2):
            with tracer.span("generate"):
                with tracer.span("library"):
                    pass
        profile = profile_from_tracer(tracer)
        assert profile.nodes[("generate",)].count == 2
        assert profile.nodes[("generate", "library")].count == 2

    def test_profile_from_tracer_without_ring_is_empty(self, tracer):
        assert profile_from_tracer(tracer).span_count == 0

    def test_spans_capture_thread_cpu_time(self, tracer):
        with tracer.span("busy") as busy:
            total = 0
            for i in range(200_000):
                total += i * i
        assert busy.cpu_ns is not None
        assert busy.cpu_ms > 0.0
        # CPU-bound work: CPU time tracks wall time within scheduler noise.
        assert busy.cpu_ms <= busy.duration_ms * 1.5 + 1.0

    def test_open_span_reports_zero_cpu(self, tracer):
        with tracer.span("open") as open_span:
            assert open_span.cpu_ms == 0.0
        assert open_span.cpu_ms >= 0.0

    def test_to_dict_includes_cpu(self, tracer):
        with tracer.span("timed") as timed:
            pass
        assert "cpu_ms" in timed.to_dict()


class TestCprofileAttach:
    def test_session_captures_function_stats(self):
        def busy():
            return sum(i * i for i in range(50_000))

        with cprofile_session() as profiler:
            busy()
        text = cprofile_stats_text(profiler, top=5)
        assert "function calls" in text
        assert "cumulative" in text

    def test_stats_text_honors_sort(self):
        with cprofile_session() as profiler:
            sum(range(1000))
        text = cprofile_stats_text(profiler, top=3, sort="tottime")
        assert "internal time" in text


class TestTraceEvents:
    def test_empty_input_yields_empty_document(self):
        from repro.obs.prof import to_trace_events

        document = to_trace_events([])
        assert document == {"traceEvents": [], "displayTimeUnit": "ms"}

    def test_spans_become_complete_events_rebased_to_zero(self):
        from repro.obs.prof import to_trace_events

        child = _span("xsdgen.library", 40.0)
        child.started_at, child.ended_at = 105.0, 105.040
        root = _span("serve.request", 100.0, children=[child])
        root.started_at, root.ended_at = 105.0, 105.100
        document = to_trace_events([root])
        events = document["traceEvents"]
        assert len(events) == 2
        root_event = next(e for e in events if e["name"] == "serve.request")
        assert root_event["ph"] == "X"
        assert root_event["ts"] == 0.0
        assert root_event["dur"] == pytest.approx(100_000.0, rel=0.01)  # µs
        child_event = next(e for e in events if e["name"] == "xsdgen.library")
        assert child_event["args"]["parent_id"] == root.span_id

    def test_each_tree_gets_its_own_tid(self):
        from repro.obs.prof import to_trace_events

        first, second = _span("a", 1.0), _span("b", 1.0)
        events = to_trace_events([first, second])["traceEvents"]
        assert {event["tid"] for event in events} == {1, 2}

    def test_attributes_and_status_ride_in_args(self):
        from repro.obs.prof import to_trace_events

        root = _span("serve.request", 5.0)
        root.attributes = {"endpoint": "validate", "docs": 3}
        root.status = "error"
        root.error = "ValueError: boom"
        [event] = to_trace_events([root])["traceEvents"]
        assert event["args"]["endpoint"] == "validate"
        assert event["args"]["status"] == "error"
        assert event["args"]["error"] == "ValueError: boom"

    def test_render_trace_events_is_json(self):
        from repro.obs.prof import render_trace_events

        text = render_trace_events([_span("a", 1.0)])
        document = json.loads(text)
        assert document["displayTimeUnit"] == "ms"

    def test_unfinished_spans_are_skipped(self):
        from repro.obs.prof import to_trace_events

        open_span = Span(name="still.open")
        open_span.started_at = 1.0
        finished = _span("done", 1.0)
        finished.children.append(open_span)
        open_span.parent = finished
        events = to_trace_events([finished])["traceEvents"]
        assert [event["name"] for event in events] == ["done"]
