"""docs/api.md must stay in sync with the code's docstrings."""

import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent


def test_api_reference_is_current():
    sys.path.insert(0, str(ROOT / "tools"))
    try:
        import gen_api_docs

        generated = gen_api_docs.generate()
    finally:
        sys.path.pop(0)
    committed = (ROOT / "docs" / "api.md").read_text(encoding="utf-8")
    assert committed == generated, (
        "docs/api.md is stale; regenerate with `python tools/gen_api_docs.py`"
    )


def test_every_subpackage_is_covered():
    text = (ROOT / "docs" / "api.md").read_text(encoding="utf-8")
    assert "## Not covered above" not in text


def test_generator_runs_as_script(tmp_path):
    result = subprocess.run(
        [sys.executable, str(ROOT / "tools" / "gen_api_docs.py")],
        capture_output=True, text=True, cwd=ROOT,
    )
    assert result.returncode == 0
    assert "wrote" in result.stdout
