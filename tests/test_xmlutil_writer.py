"""Unit tests for the XML element tree, writer and parser."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.xmlutil.writer import XmlElement, XmlWriter, parse_xml


class TestXmlElement:
    def test_invalid_tag_rejected(self):
        with pytest.raises(ValueError):
            XmlElement("1bad")

    def test_prefixed_tag_accepted(self):
        assert XmlElement("xsd:schema").tag == "xsd:schema"

    def test_chaining(self):
        element = XmlElement("a").set("x", "1").text("hi")
        assert element.attributes == {"x": "1"}
        assert element.text_content == "hi"

    def test_add_returns_child(self):
        parent = XmlElement("a")
        child = parent.add("b", {"k": "v"})
        assert child in parent.element_children
        assert child.attributes["k"] == "v"

    def test_find_and_find_all(self):
        parent = XmlElement("a")
        parent.add("b")
        parent.add("b")
        parent.add("c")
        assert parent.find("c") is not None
        assert parent.find("missing") is None
        assert len(parent.find_all("b")) == 2

    def test_element_children_skips_text(self):
        parent = XmlElement("a")
        parent.text("text")
        parent.add("b")
        assert len(parent.element_children) == 1


class TestXmlWriter:
    def test_declaration_and_indent(self):
        root = XmlElement("a")
        root.add("b").text("x")
        text = XmlWriter().to_string(root)
        assert text.startswith('<?xml version="1.0" encoding="UTF-8"?>\n')
        assert "  <b>x</b>" in text

    def test_self_closing_empty_element(self):
        assert "<a/>" in XmlWriter().to_string(XmlElement("a"))

    def test_attribute_escaping(self):
        root = XmlElement("a", {"v": 'x"y'})
        assert 'v="x&quot;y"' in XmlWriter().to_string(root)

    def test_text_escaping(self):
        root = XmlElement("a")
        root.text("a < b & c")
        assert "a &lt; b &amp; c" in XmlWriter().to_string(root)

    def test_attribute_order_preserved(self):
        root = XmlElement("a")
        root.set("z", "1")
        root.set("a", "2")
        text = XmlWriter().to_string(root)
        assert text.index('z="1"') < text.index('a="2"')

    def test_sorted_attributes_option(self):
        root = XmlElement("a")
        root.set("z", "1")
        root.set("a", "2")
        text = XmlWriter(sort_attributes=True).to_string(root)
        assert text.index('a="2"') < text.index('z="1"')

    def test_deterministic_output(self):
        root = XmlElement("a")
        root.add("b", {"x": "1"}).text("t")
        writer = XmlWriter()
        assert writer.to_string(root) == writer.to_string(root)


class TestParseXml:
    def test_simple_round_trip(self):
        root = XmlElement("a", {"k": "v"})
        root.add("b").text("hello & goodbye")
        text = XmlWriter().to_string(root)
        parsed = parse_xml(text)
        assert parsed.tag == "a"
        assert parsed.attributes["k"] == "v"
        assert parsed.find("b").text_content == "hello & goodbye"

    def test_prefix_preservation(self):
        text = (
            '<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema" '
            'xmlns:cdt="urn:cdt"><xsd:element name="X" type="cdt:Y"/></xsd:schema>'
        )
        parsed = parse_xml(text)
        assert parsed.tag == "xsd:schema"
        assert parsed.attributes["xmlns:cdt"] == "urn:cdt"
        child = parsed.element_children[0]
        assert child.tag == "xsd:element"
        assert child.attributes["type"] == "cdt:Y"

    def test_default_namespace_elements(self):
        text = '<root xmlns="urn:d"><child/></root>'
        parsed = parse_xml(text)
        assert parsed.tag == "root"
        assert parsed.attributes["xmlns"] == "urn:d"
        assert parsed.element_children[0].tag == "child"

    def test_empty_document_raises(self):
        with pytest.raises(Exception):
            parse_xml("not xml at all")

    def test_nested_structure(self):
        text = "<a><b><c>deep</c></b></a>"
        parsed = parse_xml(text)
        assert parsed.find("b").find("c").text_content == "deep"


_name = st.from_regex(r"[a-zA-Z][a-zA-Z0-9]{0,8}", fullmatch=True)
_text_value = st.text(
    alphabet=st.characters(blacklist_categories=("Cs", "Cc"), max_codepoint=0x2FFF),
    min_size=1,
    max_size=30,
).map(lambda s: " ".join(s.split())).filter(bool)


@st.composite
def _element_trees(draw, depth=0):
    element = XmlElement(draw(_name))
    for attr_name in draw(st.lists(_name, max_size=3, unique=True)):
        element.set(attr_name, draw(_text_value))
    if depth < 2:
        for _ in range(draw(st.integers(0, 3))):
            element.children.append(draw(_element_trees(depth=depth + 1)))
    if not element.element_children and draw(st.booleans()):
        element.text(draw(_text_value))
    return element


class TestWriterParserProperties:
    @given(_element_trees())
    def test_write_parse_write_is_identity(self, tree):
        writer = XmlWriter()
        once = writer.to_string(tree)
        twice = writer.to_string(parse_xml(once))
        assert once == twice


# Text where whitespace matters: the normalized _text_value above never
# exercises \r (which parsers normalize away unless written as &#13;).
_whitespace_rich_text = st.text(
    alphabet=st.characters(
        blacklist_categories=("Cs", "Cc"),
        whitelist_characters="\r\n\t",
        max_codepoint=0x2FFF,
    ),
    min_size=1,
    max_size=30,
)


class TestRoundTripFidelity:
    def test_carriage_return_in_text_round_trips(self):
        root = XmlElement("a")
        root.add("b").text("line1\rline2\r\nline3")
        writer = XmlWriter()
        once = writer.to_string(root)
        assert "&#13;" in once  # a literal \r would be normalized on parse
        parsed = parse_xml(once)
        assert parsed.find("b").text_content == "line1\rline2\r\nline3"
        assert writer.to_string(parsed) == once

    def test_carriage_return_in_attribute_round_trips(self):
        root = XmlElement("a", {"note": "one\rtwo"})
        writer = XmlWriter()
        once = writer.to_string(root)
        parsed = parse_xml(once)
        assert parsed.attributes["note"] == "one\rtwo"
        assert writer.to_string(parsed) == once

    def test_xml_lang_attribute_round_trips(self):
        root = XmlElement("a", {"xml:lang": "en-US"})
        root.text("Hoarding Permit")
        writer = XmlWriter()
        once = writer.to_string(root)
        parsed = parse_xml(once)
        assert parsed.attributes["xml:lang"] == "en-US"
        assert writer.to_string(parsed) == once

    @given(_whitespace_rich_text)
    def test_text_with_control_whitespace_round_trips(self, value):
        root = XmlElement("a")
        root.text(value)
        writer = XmlWriter()
        once = writer.to_string(root)
        parsed = parse_xml(once)
        assert parsed.text_content == value
        assert writer.to_string(parsed) == once

    @given(_whitespace_rich_text)
    def test_attribute_with_control_whitespace_round_trips(self, value):
        root = XmlElement("a", {"v": value})
        writer = XmlWriter()
        once = writer.to_string(root)
        parsed = parse_xml(once)
        assert parsed.attributes["v"] == value
        assert writer.to_string(parsed) == once
