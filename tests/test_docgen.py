"""Tests for the HTML schema-documentation generator."""

import pytest

from repro.xsdgen import GenerationOptions, SchemaGenerator, document_schemas, write_documentation


@pytest.fixture
def annotated_result(easybiz):
    easybiz.hoarding_permit.definition = "Permit to erect a hoarding on public land."
    options = GenerationOptions(annotated=True)
    return SchemaGenerator(easybiz.model, options).generate(
        easybiz.doc_library, root="HoardingPermit"
    )


class TestDocumentation:
    def test_page_structure(self, annotated_result):
        page = document_schemas(annotated_result, title="EasyBiz document types")
        assert page.startswith("<!DOCTYPE html>")
        assert "<title>EasyBiz document types</title>" in page
        assert page.count("<h2") == 6  # one section per schema

    def test_namespace_index(self, annotated_result):
        page = document_schemas(annotated_result)
        assert "urn:au:gov:vic:easybiz:data:draft:EB005-HoardingPermit" in page
        assert "data_draft_EB005-HoardingPermit_0.4.xsd" in page

    def test_types_and_members_listed(self, annotated_result):
        page = document_schemas(annotated_result)
        assert "HoardingPermitType" in page
        assert "<td>IncludedAttachment</td>" in page
        assert "<td>0..*</td>" in page
        assert "CodeListAgName" in page

    def test_cross_links_between_types(self, annotated_result):
        page = document_schemas(annotated_result)
        # The DOC page links the ASBIE's type to the CommonAggregates section.
        assert '<a href="#t-' in page
        # Builtins render as plain code, not links.
        assert "<code>xsd:string</code>" in page

    def test_ccts_annotations_shown(self, annotated_result):
        page = document_schemas(annotated_result)
        assert "Permit to erect a hoarding on public land." in page
        assert 'class="den"' in page  # dictionary entry names present

    def test_enumeration_values_listed(self, annotated_result):
        page = document_schemas(annotated_result)
        assert "<code>USA</code>" in page and "<code>kingston</code>" in page

    def test_root_element_called_out(self, annotated_result):
        page = document_schemas(annotated_result)
        assert "root element" in page
        assert "<strong>HoardingPermit</strong>" in page

    def test_write_documentation(self, annotated_result, tmp_path):
        path = write_documentation(annotated_result, tmp_path / "doc.html")
        assert path.exists()
        assert path.read_text(encoding="utf-8").startswith("<!DOCTYPE html>")

    def test_unannotated_result_still_documents(self, easybiz_result):
        page = document_schemas(easybiz_result)
        assert "HoardingPermitType" in page
