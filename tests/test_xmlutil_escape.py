"""Unit tests for XML escaping and name validity."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.xmlutil.escape import (
    escape_attribute,
    escape_text,
    is_valid_ncname,
    is_valid_xml_name,
)


class TestEscapeText:
    def test_plain_text_unchanged(self):
        assert escape_text("hello world") == "hello world"

    def test_ampersand(self):
        assert escape_text("a & b") == "a &amp; b"

    def test_angle_brackets(self):
        assert escape_text("<tag>") == "&lt;tag&gt;"

    def test_ampersand_escaped_before_entities(self):
        # '&lt;' in input must not double-unescape: & first.
        assert escape_text("&lt;") == "&amp;lt;"

    def test_quotes_untouched_in_text(self):
        assert escape_text('say "hi"') == 'say "hi"'

    def test_carriage_return_becomes_charref(self):
        # A literal \r in character data would be normalized to \n by any
        # conforming parser (XML 1.0 section 2.11); only &#13; round-trips.
        assert escape_text("a\rb") == "a&#13;b"

    def test_crlf_preserved_distinctly(self):
        assert escape_text("a\r\nb") == "a&#13;\nb"


class TestEscapeAttribute:
    def test_double_quote(self):
        assert escape_attribute('a"b') == "a&quot;b"

    def test_newline_and_tab(self):
        assert escape_attribute("a\nb\tc") == "a&#10;b&#9;c"

    def test_carriage_return(self):
        assert escape_attribute("a\rb") == "a&#13;b"

    def test_combined(self):
        assert escape_attribute('<a href="x">&') == "&lt;a href=&quot;x&quot;&gt;&amp;"


class TestNameValidity:
    @pytest.mark.parametrize("name", ["a", "A1", "_x", "xml-name", "na.me", "ns:local", "Ärger"])
    def test_valid_names(self, name):
        assert is_valid_xml_name(name)

    @pytest.mark.parametrize("name", ["", "1abc", "-x", ".x", "a b", "a<b"])
    def test_invalid_names(self, name):
        assert not is_valid_xml_name(name)

    def test_ncname_rejects_colon(self):
        assert not is_valid_ncname("ns:local")
        assert is_valid_ncname("local")


class TestEscapeProperties:
    @given(st.text())
    def test_text_escape_removes_raw_specials(self, value):
        escaped = escape_text(value)
        assert "<" not in escaped
        assert ">" not in escaped.replace("&gt;", "")

    @given(st.text())
    def test_attribute_escape_removes_quotes_and_newlines(self, value):
        escaped = escape_attribute(value)
        assert '"' not in escaped
        assert "\n" not in escaped

    @given(st.text())
    def test_text_escape_removes_raw_carriage_returns(self, value):
        assert "\r" not in escape_text(value)
