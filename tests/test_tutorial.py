"""The tutorial in docs/tutorial.md must execute exactly as written.

This test transcribes the tutorial's freight-booking walkthrough; if an API
change breaks the tutorial, this fails before a reader does.
"""

from repro import CctsModel, GenerationOptions, SchemaGenerator, validate_instance, validate_model
from repro.binding import marshal_string, unmarshal
from repro.ccts.derivation import derive_abie, derive_qdt
from repro.registry import Registry
from repro.uml.association import AggregationKind


def test_tutorial_end_to_end(tmp_path):
    # 1. primitives and core data types
    model = CctsModel("Freight")
    biz = model.add_business_library("Freight", "urn:example:freight")
    prims = biz.add_prim_library("Primitives")
    string = prims.add_primitive("String")
    decimal = prims.add_primitive("Decimal")
    cdts = biz.add_cdt_library("DataTypes")
    text = cdts.add_cdt("Text")
    text.set_content(string.element)
    text.add_supplementary("LanguageIdentifier", string.element, "0..1")
    code = cdts.add_cdt("Code")
    code.set_content(string.element)
    code.add_supplementary("CodeListName", string.element, "0..1")
    measure = cdts.add_cdt("Measure")
    measure.set_content(decimal.element)
    measure.add_supplementary("MeasureUnitCode", string.element, "0..1")

    # 2. qualified data types
    enums = biz.add_enum_library("CodeLists")
    mode = enums.add_enumeration(
        "TransportMode_Code", {"SEA": "Maritime", "AIR": "Air", "RAIL": "Rail"}
    )
    qdts = biz.add_qdt_library("FreightDataTypes")
    mode_type = derive_qdt(
        qdts, code, "TransportModeType",
        keep_supplementaries=["CodeListName"], content_enum=mode,
    )

    # 3. core components
    ccs = biz.add_cc_library("FreightComponents")
    location = ccs.add_acc("Location")
    location.add_bcc("Identification", code, "1")
    location.add_bcc("Name", text, "0..1")
    consignment = ccs.add_acc("Consignment")
    consignment.add_bcc("Identification", code, "1")
    consignment.add_bcc("GrossWeight", measure, "0..1")
    consignment.add_bcc("Mode", code, "0..1")
    consignment.add_ascc("Origin", location, "1", AggregationKind.COMPOSITE)
    consignment.add_ascc("Destination", location, "1", AggregationKind.COMPOSITE)

    assert consignment.den() == "Consignment. Details"
    assert consignment.bcc("GrossWeight").den() == "Consignment. Gross Weight. Measure"
    assert consignment.component_set()[0] == "Consignment (ACC)"

    # 4. business information entities
    bies = biz.add_bie_library("FreightAggregates", namespacePrefix="freight")
    loc = derive_abie(bies, location)
    loc.include("Identification")
    loc.include("Name", "0..1")
    booking = derive_abie(bies, consignment, qualifier="Booked")
    booking.include("Identification")
    booking.include("GrossWeight", "0..1")
    booking.include("Mode", "0..1", data_type=mode_type)
    booking.connect("Origin", loc.abie, based_on="Origin")
    booking.connect("Destination", loc.abie, based_on="Destination")

    # 5. document assembly and validation
    doc = biz.add_doc_library("FreightBooking")
    root = derive_abie(doc, consignment, name="FreightBooking")
    root.include("Identification")
    root.connect("Origin", loc.abie, based_on="Origin")
    root.connect("Destination", loc.abie, based_on="Destination")
    report = validate_model(model)
    assert report.ok, str(report)

    # 6. generate schemas
    options = GenerationOptions(annotated=True, target_directory=tmp_path / "schemas")
    result = SchemaGenerator(model, options).generate(doc, root="FreightBooking")
    assert (tmp_path / "schemas").is_dir()
    text_out = result.root.to_string()
    assert "FreightBookingType" in text_out

    # 7. exchange messages
    schema_set = result.schema_set()
    message = marshal_string(schema_set, "FreightBooking", {
        "Identification": {"#value": "CON-88172"},
        "OriginLocation": {"Identification": "AUMEL", "Name": "Melbourne"},
        "DestinationLocation": {"Identification": "ATVIE"},
    })
    assert validate_instance(schema_set, message) == []
    data = unmarshal(schema_set, message)
    assert data["OriginLocation"]["Name"] == "Melbourne"

    # 8. register and search
    registry = Registry(tmp_path / "registry")
    registry.store("freight-v1", model)
    hits = registry.search("Consignment")
    assert hits
    reloaded = registry.load("freight-v1")
    assert validate_model(reloaded).ok
