"""Tests for the derivative-based RELAX NG validator.

The key property: the independent RNG engine must agree with the XSD
validator on every instance -- valid ones and every mutation -- which
demonstrates the generated RELAX NG grammar really describes the same
document language.
"""

import pytest

from repro.instances import (
    InstanceGenerator,
    add_unknown_attribute,
    add_unknown_child,
    corrupt_enumeration_value,
    drop_required_attribute,
    drop_required_child,
)
from repro.rngen import result_to_rng
from repro.rngen.validator import (
    AttributeP,
    Choice,
    DataP,
    ElementP,
    Empty,
    Group,
    NotAllowed,
    OneOrMore,
    RngValidator,
    Text,
    ValueP,
    choice,
    compile_grammar,
    group,
)
from repro.xmlutil.qname import QName
from repro.xmlutil.writer import parse_xml
from repro.xsd.validator import validate_instance


@pytest.fixture
def rng_validator(easybiz_result):
    grammar = compile_grammar(result_to_rng(easybiz_result, "HoardingPermit"))
    return RngValidator(grammar)


class TestPatternAlgebra:
    def test_choice_simplification(self):
        assert choice(NotAllowed(), Text()) == Text()
        assert choice(Text(), NotAllowed()) == Text()
        assert choice(Text(), Text()) == Text()
        assert isinstance(choice(Text(), Empty()), Choice)

    def test_group_simplification(self):
        assert group(Empty(), Text()) == Text()
        assert group(Text(), Empty()) == Text()
        assert group(NotAllowed(), Text()) == NotAllowed()
        assert isinstance(group(Text(), Text()), Group)

    def test_patterns_are_hashable(self):
        patterns = {Empty(), Text(), DataP("string"), ValueP("x"),
                    OneOrMore(Text()), AttributeP("a", Text()),
                    ElementP(QName("urn:x", "E"), "c1")}
        assert len(patterns) == 7


class TestCompilation:
    def test_grammar_compiles(self, easybiz_result):
        grammar = compile_grammar(result_to_rng(easybiz_result, "HoardingPermit"))
        assert isinstance(grammar.start, ElementP)
        assert grammar.start.name.local == "HoardingPermit"
        assert grammar.defines  # content defines drained from the work list

    def test_recursive_grammar_terminates(self):
        # element A contains optional A: compilation must not loop.
        text = (
            '<grammar xmlns="http://relaxng.org/ns/structure/1.0">'
            '<start><ref name="e.A"/></start>'
            '<define name="e.A"><element name="A" ns=""><optional><ref name="e.A"/></optional>'
            "</element></define></grammar>"
        )
        grammar = compile_grammar(parse_xml(text))
        validator = RngValidator(grammar)
        assert validator.validate(parse_xml("<A><A/></A>"))
        assert validator.validate(parse_xml("<A><A><A/></A></A>"))
        assert not validator.validate(parse_xml("<A><B/></A>"))

    def test_unknown_ref_rejected(self):
        from repro.errors import SchemaError

        text = (
            '<grammar xmlns="http://relaxng.org/ns/structure/1.0">'
            '<start><ref name="nope"/></start></grammar>'
        )
        with pytest.raises(SchemaError):
            compile_grammar(parse_xml(text))


class TestValidation:
    def test_valid_instances_accepted(self, rng_validator, easybiz_schema_set):
        for fill in (True, False):
            document = InstanceGenerator(easybiz_schema_set, fill_optional=fill).generate("HoardingPermit")
            assert rng_validator.validate(document)

    def test_unbounded_repetition_accepted(self, rng_validator, easybiz_schema_set):
        document = InstanceGenerator(easybiz_schema_set, repeat_unbounded=5).generate("HoardingPermit")
        assert rng_validator.validate(document)

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda doc: drop_required_child(doc, "IncludedRegistration"),
            lambda doc: drop_required_child(doc, "Designation"),
            lambda doc: corrupt_enumeration_value(doc, "CountryName"),
            lambda doc: drop_required_attribute(doc, "CodeListName"),
            lambda doc: add_unknown_child(doc),
            lambda doc: add_unknown_attribute(doc),
        ],
        ids=["drop-registration", "drop-designation", "bad-enum",
             "drop-attr", "extra-child", "extra-attr"],
    )
    def test_mutations_rejected(self, mutate, rng_validator, easybiz_schema_set):
        document = InstanceGenerator(easybiz_schema_set).generate("HoardingPermit")
        assert mutate(document)
        assert not rng_validator.validate(document)

    def test_agrees_with_xsd_validator(self, rng_validator, easybiz_schema_set):
        mutations = [
            None,
            lambda doc: drop_required_child(doc, "IncludedRegistration"),
            lambda doc: drop_required_child(doc, "PersonalSignature"),
            lambda doc: corrupt_enumeration_value(doc, "CountryName"),
            lambda doc: add_unknown_child(doc, under="IncludedRegistration"),
        ]
        for mutate in mutations:
            document = InstanceGenerator(easybiz_schema_set).generate("HoardingPermit")
            if mutate is not None:
                assert mutate(document)
            xsd_verdict = validate_instance(easybiz_schema_set, document) == []
            rng_verdict = rng_validator.validate(document)
            assert xsd_verdict == rng_verdict, f"validators disagree after {mutate}"

    def test_wrong_root_rejected(self, rng_validator):
        assert not rng_validator.validate(parse_xml("<WrongRoot/>"))

    def test_ecommerce_grammar(self, ecommerce):
        from repro.xsdgen import SchemaGenerator

        result = SchemaGenerator(ecommerce.model).generate(ecommerce.doc_library, root="PurchaseOrder")
        validator = RngValidator(compile_grammar(result_to_rng(result, "PurchaseOrder")))
        schema_set = result.schema_set()
        document = InstanceGenerator(schema_set).generate("PurchaseOrder")
        assert validator.validate(document)
        broken = InstanceGenerator(schema_set).generate("PurchaseOrder")
        drop_required_child(broken, "BuyerParty")
        assert not validator.validate(broken)
