"""Unit tests for context-driven entity resolution."""

import pytest

from repro.ccts.assembly import ContextRegistry
from repro.ccts.context import BusinessContext
from repro.ccts.derivation import derive_abie
from repro.errors import CctsError


@pytest.fixture
def world(figure1):
    registry = ContextRegistry(figure1.model)
    return figure1, registry


US = BusinessContext.build("US", geopolitical="US")
US_RETAIL = BusinessContext.build("US retail", geopolitical="US", industry_classification="Retail")
AT = BusinessContext.build("AT", geopolitical="AT")
ANY = BusinessContext()


class TestRegistration:
    def test_register_and_list(self, world):
        figure1, registry = world
        registry.register(figure1.us_person, US)
        entities = registry.entities_of(figure1.person)
        assert [(abie.name, str(ctx)) for abie, ctx in entities] == [("US_Person", "US")]

    def test_registration_stamps_tagged_value(self, world):
        figure1, registry = world
        registry.register(figure1.us_person, US)
        assert figure1.us_person.business_context == "US"

    def test_duplicate_context_rejected(self, world):
        figure1, registry = world
        registry.register(figure1.us_person, US)
        other = derive_abie(figure1.bie_library, figure1.person, qualifier="USX").abie
        with pytest.raises(CctsError, match="already has an entity"):
            registry.register(other, US)

    def test_orphan_abie_rejected(self, world):
        figure1, registry = world
        loner = figure1.bie_library.add_abie("Loner")
        with pytest.raises(CctsError, match="not based on"):
            registry.register(loner, US)

    def test_register_all_unqualified(self, easybiz):
        registry = ContextRegistry(easybiz.model)
        count = registry.register_all_unqualified()
        assert count == len(easybiz.model.abies())
        permit = registry.resolve(easybiz.model.acc("HoardingPermit"), ANY)
        assert permit.name == "HoardingPermit"


class TestResolution:
    def test_exact_context(self, world):
        figure1, registry = world
        registry.register(figure1.us_person, US)
        assert registry.resolve(figure1.person, US).name == "US_Person"

    def test_subcontext_matches(self, world):
        figure1, registry = world
        registry.register(figure1.us_person, US)
        assert registry.resolve(figure1.person, US_RETAIL).name == "US_Person"

    def test_most_specific_wins(self, world):
        figure1, registry = world
        registry.register(figure1.us_person, US)
        retail = derive_abie(figure1.bie_library, figure1.person, qualifier="USRetail").abie
        registry.register(retail, US_RETAIL)
        assert registry.resolve(figure1.person, US_RETAIL).name == "USRetail_Person"
        assert registry.resolve(figure1.person, US).name == "US_Person"

    def test_default_entity_for_unmatched_context(self, world):
        figure1, registry = world
        registry.register(figure1.us_person, US)
        generic = derive_abie(figure1.bie_library, figure1.person, qualifier="Generic").abie
        registry.register(generic, ANY)
        assert registry.resolve(figure1.person, AT).name == "Generic_Person"

    def test_no_candidate_raises(self, world):
        figure1, registry = world
        registry.register(figure1.us_person, US)
        with pytest.raises(CctsError, match="no business information entity"):
            registry.resolve(figure1.person, AT)

    def test_ambiguity_raises(self, world):
        figure1, registry = world
        registry.register(figure1.us_person, US)
        ambiguous = derive_abie(figure1.bie_library, figure1.person, qualifier="Fed").abie
        registry.register(
            ambiguous, BusinessContext.build("US official", official_constraints="Federal")
        )
        with pytest.raises(CctsError, match="ambiguous"):
            registry.resolve(
                figure1.person,
                BusinessContext.build(geopolitical="US", official_constraints="Federal"),
            )


class TestDocumentAssembly:
    def _world(self):
        from repro.catalog.primitives import add_standard_prim_library
        from repro.ccts.assembly import assemble_document
        from repro.ccts.derivation import derive_abie
        from repro.ccts.model import CctsModel
        from repro.ccts.assembly import ContextRegistry

        model = CctsModel("Assembly")
        business = model.add_business_library("B", "urn:assembly")
        prims = add_standard_prim_library(business)
        string = prims.primitive("String").element
        cdts = business.add_cdt_library("Cdts")
        text = cdts.add_cdt("Text")
        text.set_content(string)
        ccs = business.add_cc_library("Ccs")
        address = ccs.add_acc("Address")
        address.add_bcc("Street", text, "0..1")
        address.add_bcc("State", text, "0..1")
        address.add_bcc("Province", text, "0..1")
        order = ccs.add_acc("Order")
        order.add_bcc("Identification", text, "1")
        order.add_ascc("Delivery", address, "0..1")
        bies = business.add_bie_library("Bies")
        us_address = derive_abie(bies, address, qualifier="US")
        us_address.include("Street", "0..1")
        us_address.include("State", "0..1")
        at_address = derive_abie(bies, address, qualifier="AT")
        at_address.include("Street", "0..1")
        at_address.include("Province", "0..1")
        registry = ContextRegistry(model)
        registry.register(us_address.abie, US)
        registry.register(at_address.abie, AT)
        doc = business.add_doc_library("Orders")
        return model, doc, order, registry, assemble_document

    def test_context_selects_entities(self):
        model, doc, order, registry, assemble = self._world()
        us_doc = assemble(doc, order, US, registry, name="USOrder")
        at_doc = assemble(doc, order, AT, registry, name="ATOrder")
        assert us_doc.asbie("Delivery").target.name == "US_Address"
        assert at_doc.asbie("Delivery").target.name == "AT_Address"
        assert us_doc.business_context == "US"

    def test_assembled_documents_generate_distinct_schemas(self):
        from repro.xsdgen import SchemaGenerator

        model, doc, order, registry, assemble = self._world()
        assemble(doc, order, US, registry, name="USOrder")
        assemble(doc, order, AT, registry, name="ATOrder")
        us_schema = SchemaGenerator(model).generate(doc, root="USOrder").root.schema
        at_schema = SchemaGenerator(model).generate(doc, root="ATOrder").root.schema
        us_type = us_schema.complex_type("USOrderType").particle.particles
        at_type = at_schema.complex_type("ATOrderType").particle.particles
        assert us_type[-1].name == "DeliveryUS_Address"
        assert at_type[-1].name == "DeliveryAT_Address"

    def test_unresolvable_context_aborts_assembly(self):
        import pytest as _pytest

        model, doc, order, registry, assemble = self._world()
        with _pytest.raises(CctsError, match="no business information entity"):
            assemble(doc, order, BusinessContext.build(geopolitical="DE"), registry)
