"""Unit tests for DOT diagram rendering (Figure 4's diagram side)."""

from repro.uml.diagram import model_to_dot, package_to_dot


class TestPackageDiagrams:
    def test_class_boxes_with_stereotypes_and_attributes(self, easybiz):
        dot = package_to_dot(easybiz.cc_library.package, "Components")
        assert dot.startswith("digraph Components {")
        assert dot.endswith("}")
        assert "\\<\\<ACC\\>\\> Application" in dot
        assert "+ CreatedDate: Date [0..1]" in dot
        assert "shape=record" in dot

    def test_aggregation_diamonds(self, easybiz):
        dot = package_to_dot(easybiz.cc_library.package)
        # Composite ASCCs use a filled diamond tail.
        assert "arrowtail=diamond" in dot
        # Person_Identification's Assigned ASCC is shared: hollow diamond.
        assert "arrowtail=odiamond" in dot

    def test_role_names_and_multiplicities_on_edges(self, easybiz):
        dot = package_to_dot(easybiz.cc_library.package)
        assert 'label="+Applicant [1]"' in dot
        assert 'label="+Included [0..*]"' in dot

    def test_based_on_dependencies_dashed(self, easybiz):
        dot = package_to_dot(easybiz.common_aggregates.package)
        assert "style=dashed" in dot
        assert "\\<\\<basedOn\\>\\>" in dot

    def test_enumeration_literals_listed(self, easybiz):
        dot = package_to_dot(easybiz.enum_library.package)
        assert "USA = United States of America" in dot


class TestModelDiagram:
    def test_clusters_per_library(self, easybiz):
        dot = model_to_dot(easybiz.model.model)
        assert dot.count("subgraph cluster_") >= 8
        assert '«DOCLibrary» EB005-HoardingPermit' in dot
        assert '«CCLibrary» CandidateCoreComponents' in dot

    def test_cross_library_edges_present(self, easybiz):
        dot = model_to_dot(easybiz.model.model)
        # The DOC library's ASBIE to LocalLaw's Registration crosses clusters.
        registration = next(
            line for line in dot.splitlines()
            if "label=\"+Included [1]\"" in line
        )
        assert "->" in registration

    def test_every_stereotyped_classifier_rendered_once(self, easybiz):
        dot = model_to_dot(easybiz.model.model)
        for acc in easybiz.model.accs():
            assert dot.count(f"\\<\\<ACC\\>\\> {acc.name}|") == 1

    def test_figure1_model_diagram(self, figure1):
        dot = model_to_dot(figure1.model.model)
        assert "\\<\\<ABIE\\>\\> US_Person" in dot
        assert "\\<\\<basedOn\\>\\>" in dot

    def test_quoting_of_special_characters(self):
        from repro.uml.model import Model

        model = Model("Q")
        package = model.add_package("P")
        cls = package.add_class("Weird", stereotype="ACC")
        cls.documentation = 'has "quotes"'
        dot = model_to_dot(model)
        assert 'digraph' in dot  # renders without raising
