"""Unit tests for the data-binding layer (dict <-> business document)."""

import pytest

from repro.binding import marshal, marshal_string, unmarshal
from repro.errors import InstanceValidationError, SchemaError
from repro.xsd.validator import validate_instance


@pytest.fixture
def order_pipeline(ecommerce):
    from repro.xsdgen import SchemaGenerator

    result = SchemaGenerator(ecommerce.model).generate(ecommerce.doc_library, root="PurchaseOrder")
    return result.schema_set()


def _order_data():
    return {
        "Identification": "PO-2007-001",
        "IssueDate": "2007-04-15",
        "Currency": {"#value": "EUR", "@CodeListName": "ISO4217"},
        "BuyerParty": {
            "Identification": "B-1",
            "Name": "Custom Powder Coating GmbH",
            "PostalAddress": {
                "Street": "Favoritenstr. 9-11",
                "CityName": "Vienna",
                "Country": "AT",
            },
        },
        "SellerParty": {
            "Identification": "S-9",
            "Name": "EasyBiz Pty Ltd",
            "PostalAddress": {
                "Street": "1 Collins St",
                "CityName": "Melbourne",
            },
        },
        "OrderedLineItem": [
            {"Identification": "L-1", "Quantity": "5", "UnitPrice": "19.90"},
            {"Identification": "L-2", "Quantity": "1", "UnitPrice": "240.00",
             "Description": "Mounting kit"},
        ],
    }


class TestMarshal:
    def test_marshalled_document_is_schema_valid(self, order_pipeline):
        document = marshal(order_pipeline, "PurchaseOrder", _order_data())
        assert validate_instance(order_pipeline, document) == []

    def test_string_form(self, order_pipeline):
        text = marshal_string(order_pipeline, "PurchaseOrder", _order_data())
        assert text.startswith("<?xml")
        assert "PO-2007-001" in text
        assert validate_instance(order_pipeline, text) == []

    def test_repeated_elements_from_list(self, order_pipeline):
        document = marshal(order_pipeline, "PurchaseOrder", _order_data())
        lines = [c for c in document.element_children if c.tag.endswith("OrderedLineItem")]
        assert len(lines) == 2

    def test_simple_content_attributes(self, order_pipeline):
        document = marshal(order_pipeline, "PurchaseOrder", _order_data())
        currency = next(c for c in document.element_children if c.tag.endswith("Currency"))
        assert currency.attributes["CodeListName"] == "ISO4217"
        assert currency.text_content == "EUR"

    def test_plain_string_for_simple_content_without_attrs(self, order_pipeline):
        data = _order_data()
        data["Currency"] = "USD"
        document = marshal(order_pipeline, "PurchaseOrder", data)
        assert validate_instance(order_pipeline, document) == []

    def test_unknown_key_rejected(self, order_pipeline):
        data = _order_data()
        data["Typo"] = "x"
        with pytest.raises(InstanceValidationError, match="unknown keys"):
            marshal(order_pipeline, "PurchaseOrder", data)

    def test_missing_required_field_rejected(self, order_pipeline):
        data = _order_data()
        del data["BuyerParty"]
        with pytest.raises(InstanceValidationError, match="minimum 1"):
            marshal(order_pipeline, "PurchaseOrder", data)

    def test_too_many_occurrences_rejected(self, order_pipeline):
        data = _order_data()
        data["IssueDate"] = ["2007-01-01", "2007-01-02"]
        with pytest.raises(InstanceValidationError, match="maximum 1"):
            marshal(order_pipeline, "PurchaseOrder", data)

    def test_bad_enum_value_caught_by_validation(self, order_pipeline):
        data = _order_data()
        data["Currency"] = "BTC"
        with pytest.raises(InstanceValidationError, match="invalid"):
            marshal(order_pipeline, "PurchaseOrder", data)

    def test_validation_can_be_skipped(self, order_pipeline):
        data = _order_data()
        data["Currency"] = "BTC"
        document = marshal(order_pipeline, "PurchaseOrder", data, validate=False)
        assert validate_instance(order_pipeline, document)

    def test_unknown_root_rejected(self, order_pipeline):
        with pytest.raises(SchemaError):
            marshal(order_pipeline, "Invoice", {})

    def test_wrong_shape_rejected(self, order_pipeline):
        with pytest.raises(InstanceValidationError, match="expected a dict"):
            marshal(order_pipeline, "PurchaseOrder", "just a string")


class TestUnmarshal:
    def test_round_trip(self, order_pipeline):
        data = _order_data()
        document = marshal(order_pipeline, "PurchaseOrder", data)
        assert unmarshal(order_pipeline, document) == data

    def test_round_trip_from_string(self, order_pipeline):
        text = marshal_string(order_pipeline, "PurchaseOrder", _order_data())
        assert unmarshal(order_pipeline, text) == _order_data()

    def test_generated_instances_unmarshal(self, easybiz_schema_set):
        from repro.instances import InstanceGenerator

        document = InstanceGenerator(easybiz_schema_set).generate("HoardingPermit")
        data = unmarshal(easybiz_schema_set, document)
        assert data["IncludedRegistration"]["Type"]["#value"] == "Sample text"
        assert isinstance(data["IncludedAttachment"], list)

    def test_unexpected_element_rejected(self, order_pipeline):
        document = marshal(order_pipeline, "PurchaseOrder", _order_data())
        prefix = document.tag.partition(":")[0]
        document.add(f"{prefix}:Bogus")
        with pytest.raises(InstanceValidationError, match="unexpected element"):
            unmarshal(order_pipeline, document)

    def test_easybiz_round_trip(self, easybiz_schema_set):
        permit = {
            "ClosureReason": "Scaffolding on the footpath",
            "IncludedRegistration": {
                "Type": {
                    "#value": "LLR-7",
                    # Indicator/Registration QDTs keep Code's required SUPs
                    # (an XSD restriction cannot drop them, see EXPERIMENTS.md).
                    "@CodeListAgName": "EasyBiz",
                    "@CodeListName": "RegistrationTypes",
                    "@CodeListSchemeURI": "urn:easybiz:registration-types",
                },
            },
            "IncludedAttachment": [
                {"Description": "site plan"},
                {"Description": "insurance certificate"},
            ],
        }
        document = marshal(easybiz_schema_set, "HoardingPermit", permit)
        assert validate_instance(easybiz_schema_set, document) == []
        assert unmarshal(easybiz_schema_set, document) == permit
