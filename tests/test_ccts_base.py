"""Unit tests for the wrapper base class and annotation edge cases."""

from repro.ccts.base import ElementWrapper
from repro.ccts.model import CctsModel
from repro.ndr.annotations import annotation_entries_for


def _wrapped_pair():
    model = CctsModel("W")
    business = model.add_business_library("B", "urn:w")
    library = business.add_cc_library("L")
    acc = library.add_acc("Thing")
    return model, acc


class TestWrapperIdentity:
    def test_equality_by_wrapped_element(self):
        model, acc = _wrapped_pair()
        again = model.acc("Thing")
        assert acc == again
        assert hash(acc) == hash(again)

    def test_inequality_across_elements(self):
        model, acc = _wrapped_pair()
        library = model.cc_libraries()[0]
        other = library.add_acc("Other")
        assert acc != other
        assert acc != "Thing"

    def test_qualified_name(self):
        model, acc = _wrapped_pair()
        assert acc.qualified_name == "W.B.L.Thing"

    def test_definition_and_version_setters(self):
        model, acc = _wrapped_pair()
        acc.definition = "A thing."
        acc.version = "2.0"
        assert acc.definition == "A thing."
        assert acc.version == "2.0"
        assert acc.element.tagged_value("ACC", "definition") == "A thing."

    def test_dictionary_entry_name_tag(self):
        model, acc = _wrapped_pair()
        assert acc.dictionary_entry_name is None
        acc.element.set_tagged_value("ACC", "dictionaryEntryName", "Thing. Details")
        assert acc.dictionary_entry_name == "Thing. Details"

    def test_repr(self):
        model, acc = _wrapped_pair()
        assert repr(acc) == "<Acc 'Thing'>"


class TestAnnotationEntries:
    def test_optional_fields_included_when_set(self):
        model, acc = _wrapped_pair()
        acc.element.apply_stereotype(
            "ACC",
            businessTerm="gadget",
            usageRule="only on weekdays",
            uniqueIdentifier="UN01000123",
        )
        entries = dict(annotation_entries_for(acc, "ACC"))
        assert entries["BusinessTerm"] == "gadget"
        assert entries["UsageRule"] == "only on weekdays"
        assert entries["UniqueID"] == "UN01000123"

    def test_acronym_always_first(self):
        model, acc = _wrapped_pair()
        entries = annotation_entries_for(acc, "ACC")
        assert entries[0] == ("AcronymCode", "ACC")


class TestGlobalLocationEdge:
    def test_foreign_imports_left_untouched(self, easybiz):
        from repro.console import set_global_schema_location
        from repro.xsd.components import ImportDecl
        from repro.xsdgen import SchemaGenerator

        result = SchemaGenerator(easybiz.model).generate(
            easybiz.doc_library, root="HoardingPermit"
        )
        # Inject an import of a namespace outside the generated set.
        result.root.schema.imports.append(ImportDecl("urn:external", "http://x/y.xsd"))
        set_global_schema_location(result, "https://schemas.example.org")
        foreign = [i for i in result.root.schema.imports if i.namespace == "urn:external"]
        assert foreign[0].schema_location == "http://x/y.xsd"
