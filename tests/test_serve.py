"""Tests for the ``upcc serve`` daemon: contracts, warm paths, drain.

The heavy load characteristics (hundreds of concurrent requests against
the 200-document corpus) live in ``benchmarks/bench_serve_throughput.py``;
this file pins the behavioral contracts at tier-1 scale:

* endpoint shapes and error codes,
* byte-identity of ``/generate`` and ``/validate`` output with the CLI
  paths (the daemon is a warm transport, never a different pipeline),
* warm-cache reuse across requests,
* backpressure (503 + ``Retry-After``), per-request timeouts (504),
* graceful drain with zero dropped responses,
* the ``serve.*`` metrics.
"""

from __future__ import annotations

import http.client
import json
import threading
import time

import pytest

from repro.instances import InstanceGenerator
from repro.instances.pipeline import ValidationPipeline
from repro.obs.metrics import get_registry
from repro.serve import ServeApp, ServeConfig, UpccServer
from repro.serve.loadgen import LoadResult, request_json, run_load
from repro.xmi import write_xmi
from repro.xsd.parser import parse_schema
from repro.xsd.validator import SchemaSet


@pytest.fixture(scope="module")
def easybiz_xmi():
    from repro.catalog.easybiz import build_easybiz_model

    catalog = build_easybiz_model()
    return write_xmi(catalog.model.model, None), catalog.doc_library.name


@pytest.fixture()
def server():
    with UpccServer(ServeApp(), ServeConfig(workers=2, queue_size=16, timeout_s=20)) as running:
        yield running


def _generate(server, easybiz_xmi):
    xmi_text, library = easybiz_xmi
    status, payload = request_json(
        server.url,
        "/generate",
        {"xmi": xmi_text, "library": library, "root": "HoardingPermit"},
    )
    assert status == 200, payload
    return payload


def _raw_request(server, method, path, payload=None):
    """One request returning (status, headers dict, parsed body)."""
    connection = http.client.HTTPConnection(server.host, server.port, timeout=30)
    try:
        body = None if payload is None else json.dumps(payload).encode("utf-8")
        connection.request(method, path, body=body,
                          headers={"Content-Type": "application/json"} if body else {})
        response = connection.getresponse()
        return (
            response.status,
            dict(response.getheaders()),
            json.loads(response.read().decode("utf-8")),
        )
    finally:
        connection.close()


class TestEndpointContracts:
    def test_healthz(self, server):
        assert request_json(server.url, "/healthz") == (200, {"status": "ok"})

    def test_unknown_path_404(self, server):
        status, payload = request_json(server.url, "/nope")
        assert status == 404
        assert "no such endpoint" in payload["error"]

    def test_generate_returns_bundle_and_id(self, server, easybiz_xmi):
        payload = _generate(server, easybiz_xmi)
        assert payload["schema_set"]
        assert payload["root"] == "HoardingPermit"
        assert len(payload["schemas"]) >= 3
        assert all(text.startswith("<?xml") for text in payload["schemas"].values())

    def test_generate_rejects_missing_fields(self, server):
        status, payload = request_json(server.url, "/generate", {"xmi": "<x/>"})
        assert status == 400
        assert "library" in payload["error"]

    def test_generate_rejects_bad_model(self, server):
        status, payload = request_json(
            server.url, "/generate", {"xmi": "<notxmi/>", "library": "X"}
        )
        assert status == 400

    def test_non_json_body_400(self, server):
        connection = http.client.HTTPConnection(server.host, server.port, timeout=10)
        try:
            connection.request("POST", "/generate", body=b"{oops",
                              headers={"Content-Type": "application/json"})
            response = connection.getresponse()
            assert response.status == 400
            response.read()
        finally:
            connection.close()

    def test_validate_against_registered_set(self, server, easybiz_xmi):
        generated = _generate(server, easybiz_xmi)
        instance = self._instance(generated)
        status, report = request_json(
            server.url,
            "/validate",
            {"schema_set": generated["schema_set"],
             "documents": [{"name": "permit.xml", "xml": instance}]},
        )
        assert status == 200, report
        assert report["docs_total"] == 1
        assert report["docs_invalid"] == 0
        assert report["documents"][0]["path"] == "permit.xml"

    def test_validate_flags_invalid_document(self, server, easybiz_xmi):
        generated = _generate(server, easybiz_xmi)
        status, report = request_json(
            server.url,
            "/validate",
            {"schema_set": generated["schema_set"],
             "documents": ["<WrongRoot xmlns='urn:nope'/>"]},
        )
        assert status == 200
        assert report["docs_invalid"] == 1
        assert report["documents"][0]["problems"]

    def test_validate_unknown_set_404(self, server):
        status, payload = request_json(
            server.url, "/validate", {"schema_set": "deadbeef", "documents": ["<a/>"]}
        )
        assert status == 404
        assert "unknown schema set" in payload["error"]

    def test_validate_inline_schemas(self, server, easybiz_xmi):
        generated = _generate(server, easybiz_xmi)
        instance = self._instance(generated)
        status, report = request_json(
            server.url,
            "/validate",
            {"schemas": list(generated["schemas"].values()),
             "documents": [instance]},
        )
        assert status == 200, report
        assert report["docs_invalid"] == 0
        # Inline schemas fingerprint to the same registry id as /generate:
        # the compiled plans are shared, and the id is advertised back.
        assert report["schema_set"] == generated["schema_set"]

    def test_explain_finds_provenance(self, server, easybiz_xmi):
        generated = _generate(server, easybiz_xmi)
        status, payload = request_json(
            server.url,
            f"/explain?schema_set={generated['schema_set']}&target=HoardingPermitType",
            method="GET",
        )
        assert status == 200
        assert payload["matched"] >= 1
        record = payload["records"][0]
        assert record["rule_text"]
        assert "HoardingPermitType" in record["describe"]

    def test_explain_requires_schema_set(self, server):
        status, payload = request_json(server.url, "/explain?target=X", method="GET")
        assert status == 400

    def test_stats_reports_server_and_caches(self, server, easybiz_xmi):
        _generate(server, easybiz_xmi)
        status, payload = request_json(server.url, "/stats")
        assert status == 200
        assert payload["server"]["workers"] == 2
        assert payload["server"]["draining"] is False
        assert payload["caches"]["models"] >= 1
        assert "serve.queue_depth" in payload["metrics"]

    @staticmethod
    def _instance(generated):
        from repro.xsd.parser import parse_schema
        from repro.xsd.validator import SchemaSet

        schema_set = SchemaSet(
            [parse_schema(text) for text in generated["schemas"].values()]
        )
        return InstanceGenerator(schema_set).generate_string("HoardingPermit")


class TestCliByteIdentity:
    """The daemon must be a warm transport over the CLI pipeline, not a fork."""

    def test_generate_matches_schemagenerator_output(self, server, easybiz_xmi, easybiz_result):
        generated = _generate(server, easybiz_xmi)
        expected = {
            f"{item.namespace.folder}/{item.namespace.file_name}": item.to_string()
            for item in easybiz_result.schemas.values()
        }
        assert generated["schemas"] == expected

    def test_validate_matches_pipeline_report(self, server, easybiz_xmi, easybiz_schema_set, tmp_path):
        generated = _generate(server, easybiz_xmi)
        instance = TestEndpointContracts._instance(generated)
        documents = [("a.xml", instance), ("b.xml", "<Broken xmlns='urn:no'/>")]
        status, served = request_json(
            server.url,
            "/validate",
            {"schema_set": generated["schema_set"],
             "documents": [{"name": name, "xml": text} for name, text in documents]},
        )
        assert status == 200
        served.pop("schema_set")
        # The CLI path: a corpus on disk through ValidationPipeline.run.
        for name, text in documents:
            (tmp_path / name).write_text(text, encoding="utf-8")
        local = ValidationPipeline(easybiz_schema_set).run(tmp_path).to_json()
        for entry in local["documents"]:  # paths differ (disk vs wire labels)
            entry["path"] = entry["path"].rsplit("/", 1)[-1]
        assert json.dumps(served, indent=2) == json.dumps(local, indent=2)


class TestWarmPaths:
    def test_repeat_generate_hits_model_cache(self, easybiz_xmi):
        with UpccServer(ServeApp(), ServeConfig(workers=2)) as server:
            before = get_registry().counter("serve.model_cache_hits").value
            _generate(server, easybiz_xmi)
            _generate(server, easybiz_xmi)
            _generate(server, easybiz_xmi)
            hits = get_registry().counter("serve.model_cache_hits").value - before
            assert hits >= 2

    def test_repeat_generate_is_identical(self, server, easybiz_xmi):
        first = _generate(server, easybiz_xmi)
        second = _generate(server, easybiz_xmi)
        assert first == second

    def test_schema_set_survives_for_later_validates(self, server, easybiz_xmi):
        generated = _generate(server, easybiz_xmi)
        instance = TestEndpointContracts._instance(generated)
        for _ in range(3):
            status, report = request_json(
                server.url,
                "/validate",
                {"schema_set": generated["schema_set"], "documents": [instance]},
            )
            assert status == 200
            assert report["docs_invalid"] == 0


class _SlowApp(ServeApp):
    """Every /validate blocks until released -- for queue/timeout tests."""

    def __init__(self, delay_s: float) -> None:
        super().__init__()
        self.delay_s = delay_s

    def validate(self, payload):
        time.sleep(self.delay_s)
        return 200, {"slow": True}


class TestBackpressureAndTimeouts:
    def test_queue_overflow_returns_503_with_retry_after(self):
        config = ServeConfig(workers=1, queue_size=1, timeout_s=10)
        with UpccServer(_SlowApp(0.4), config) as server:
            results = []
            lock = threading.Lock()

            def fire():
                outcome = _raw_request(server, "POST", "/validate", {"documents": ["x"]})
                with lock:
                    results.append(outcome)

            threads = [threading.Thread(target=fire) for _ in range(6)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            statuses = sorted(status for status, _, _ in results)
            assert 503 in statuses  # the queue is 1 deep; overflow sheds
            assert 200 in statuses  # admitted work still completes
            rejected = [headers for status, headers, _ in results if status == 503]
            assert all(headers.get("Retry-After") == "1" for headers in rejected)

    def test_slow_request_times_out_504(self):
        config = ServeConfig(workers=1, queue_size=4, timeout_s=0.1)
        with UpccServer(_SlowApp(2.0), config) as server:
            status, _headers, payload = _raw_request(
                server, "POST", "/validate", {"documents": ["x"]}
            )
            assert status == 504
            assert "timed out" in payload["error"]


class TestGracefulDrain:
    def test_drain_finishes_inflight_and_rejects_new(self):
        config = ServeConfig(workers=2, queue_size=16, timeout_s=10, drain_timeout_s=10)
        server = UpccServer(_SlowApp(0.3), config).start()
        outcomes = []
        lock = threading.Lock()

        def fire():
            try:
                status, _, _ = _raw_request(server, "POST", "/validate", {"documents": ["x"]})
            except OSError:
                status = -1  # a dropped response -- must never happen
            with lock:
                outcomes.append(status)

        threads = [threading.Thread(target=fire) for _ in range(4)]
        for thread in threads:
            thread.start()
        time.sleep(0.1)  # let the requests reach the queue
        assert server.drain() is True
        for thread in threads:
            thread.join()
        # Zero dropped responses: everything admitted finished with 200,
        # everything arriving during the drain got an explicit 503.
        assert -1 not in outcomes
        assert outcomes.count(200) >= 2
        assert set(outcomes) <= {200, 503}

    def test_healthz_reports_draining(self):
        server = UpccServer(_SlowApp(0.5), ServeConfig(workers=1)).start()
        started = threading.Thread(
            target=lambda: _raw_request(server, "POST", "/validate", {"documents": ["x"]})
        )
        started.start()
        time.sleep(0.1)
        drainer = threading.Thread(target=server.drain)
        drainer.start()
        time.sleep(0.1)
        status, payload = request_json(server.url, "/healthz")
        assert (status, payload) == (503, {"status": "draining"})
        started.join()
        drainer.join()

    def test_double_drain_is_safe(self, server):
        # The fixture's context exit drains a second time afterwards.
        assert server.drain() is True


class TestMetrics:
    def test_request_metrics_emitted(self, server, easybiz_xmi):
        _generate(server, easybiz_xmi)
        request_json(server.url, "/healthz")
        snapshot = get_registry().snapshot()
        assert snapshot["serve.requests_total{endpoint=generate}"] >= 1
        assert snapshot["serve.requests_total{endpoint=healthz}"] >= 1
        assert snapshot["serve.request_ms{endpoint=generate}"]["count"] >= 1
        assert "serve.queue_depth" in snapshot


class TestLoadGenerator:
    def test_run_load_counts_and_percentiles(self, server, easybiz_xmi):
        generated = _generate(server, easybiz_xmi)
        instance = TestEndpointContracts._instance(generated)
        payload = {"schema_set": generated["schema_set"], "documents": [instance]}
        result = run_load(
            server.url, "/validate", payload, requests=20, concurrency=4
        )
        assert result.ok == 20
        assert result.dropped == 0
        assert result.failed == 0
        assert len(result.latencies_ms) == 20
        assert result.percentile(50) <= result.percentile(99)
        assert result.to_json()["rps"] > 0

    def test_percentile_of_empty_result(self):
        empty = LoadResult(0, 0, 0, 0, 0, 0.0)
        assert empty.percentile(99) == 0.0

    def test_scrape_server_quantiles(self, server, easybiz_xmi):
        from repro.serve.loadgen import scrape_server_quantiles

        generated = _generate(server, easybiz_xmi)
        instance = TestEndpointContracts._instance(generated)
        payload = {"schema_set": generated["schema_set"], "documents": [instance]}
        run_load(server.url, "/validate", payload, requests=10, concurrency=2)
        quantiles = scrape_server_quantiles(
            server.url, labels={"endpoint": "validate"}
        )
        assert quantiles is not None
        assert 0.0 < quantiles["p50"] <= quantiles["p95"] <= quantiles["p99"]


class TestMetricsEndpoint:
    def test_metrics_returns_valid_exposition(self, server, easybiz_xmi):
        from repro.obs.export import parse_prometheus_text
        from repro.serve.loadgen import request_text

        _generate(server, easybiz_xmi)
        status, text = request_text(server.url, "/metrics")
        assert status == 200
        families = parse_prometheus_text(text)  # raises on malformed payload
        assert families["serve_requests_total"].type == "counter"
        assert families["serve_request_ms"].type == "histogram"
        assert families["runtime_rss_bytes"].type == "gauge"
        buckets = families["serve_request_ms"].buckets()
        assert buckets[-1][1] >= 1

    def test_metrics_content_type(self, server):
        connection = http.client.HTTPConnection(server.host, server.port, timeout=10)
        try:
            connection.request("GET", "/metrics")
            response = connection.getresponse()
            response.read()
            assert response.status == 200
            assert response.headers["Content-Type"].startswith("text/plain")
            assert "version=0.0.4" in response.headers["Content-Type"]
        finally:
            connection.close()


class TestRequestIds:
    def test_every_response_carries_a_request_id(self, server):
        status, headers, _body = _raw_request(server, "GET", "/healthz")
        assert status == 200
        assert len(headers["X-Request-Id"]) == 12

    def test_client_supplied_id_is_echoed(self, server):
        connection = http.client.HTTPConnection(server.host, server.port, timeout=10)
        try:
            connection.request("GET", "/healthz", headers={"X-Request-Id": "trace-me-42"})
            response = connection.getresponse()
            response.read()
            assert response.headers["X-Request-Id"] == "trace-me-42"
        finally:
            connection.close()

    def test_ids_differ_across_requests(self, server):
        _status, first, _ = _raw_request(server, "GET", "/healthz")
        _status, second, _ = _raw_request(server, "GET", "/healthz")
        assert first["X-Request-Id"] != second["X-Request-Id"]


class TestAccessLogWiring:
    def test_stats_surfaces_recent_requests(self, server):
        request_json(server.url, "/healthz")
        status, stats = request_json(server.url, "/stats")
        assert status == 200
        recent = stats["recent_requests"]
        assert recent, "access ring should not be empty"
        record = recent[0]
        assert {"method", "path", "status", "duration_ms", "queue_wait_ms",
                "worker", "request_id", "span_id"} <= set(record)
        assert any(item["path"] == "/healthz" for item in recent)

    def test_access_log_file_records_every_request(self, tmp_path, easybiz_xmi):
        config = ServeConfig(
            workers=2, queue_size=16, timeout_s=20,
            access_log=str(tmp_path / "access.jsonl"),
        )
        with UpccServer(ServeApp(), config) as running:
            _generate(running, easybiz_xmi)
            request_json(running.url, "/healthz")
            lines = (tmp_path / "access.jsonl").read_text().splitlines()
        records = [json.loads(line) for line in lines]
        assert len(records) == 2
        by_path = {record["path"]: record for record in records}
        assert by_path["/generate"]["worker"].startswith("upcc-serve-worker-")
        assert by_path["/generate"]["queue_wait_ms"] >= 0.0
        assert by_path["/healthz"]["worker"] == "inline"

    def test_queued_requests_attribute_queue_wait(self, easybiz_xmi):
        config = ServeConfig(workers=1, queue_size=16, timeout_s=20)
        with UpccServer(ServeApp(), config) as running:
            _generate(running, easybiz_xmi)
            _status, stats = request_json(running.url, "/stats")
        [queued] = [
            record for record in stats["recent_requests"]
            if record["path"] == "/generate"
        ]
        assert queued["queue_wait_ms"] >= 0.0
        assert queued["worker"].startswith("upcc-serve-worker-")
        assert queued["request_id"]


class TestSlowCapture:
    def test_slow_requests_are_captured_with_bounded_ring(self, tmp_path, easybiz_xmi):
        config = ServeConfig(
            workers=2, queue_size=16, timeout_s=20,
            slow_ms=0.0, slow_dir=str(tmp_path / "slow"), slow_keep=2,
        )
        with UpccServer(ServeApp(), config) as running:
            _generate(running, easybiz_xmi)
            request_json(running.url, "/healthz")
            status, listing = request_json(running.url, "/slow")
            assert status == 200
            assert listing["keep"] == 2
            assert 1 <= len(listing["captures"]) <= 2
            store = running.slow_store
        # After drain no more captures happen; the store's final index
        # matches the files on disk (a /slow listing itself gets captured
        # with slow_ms=0, so in-flight listings can reference evicted files).
        captures = store.list()
        assert 1 <= len(captures) <= 2
        for entry in captures:
            assert (tmp_path / "slow" / entry["jsonl"]).exists()
            assert (tmp_path / "slow" / entry["trace"]).exists()
        trace = json.loads((tmp_path / "slow" / captures[-1]["trace"]).read_text())
        assert trace["traceEvents"], "span tree should not be empty"
        # On-disk ring bounded: at most keep * 2 files.
        assert len(list((tmp_path / "slow").iterdir())) <= 4
        snapshot = get_registry().snapshot()
        assert snapshot["serve.slow_requests_total"] >= 1

    def test_fast_requests_are_not_captured(self, tmp_path, easybiz_xmi):
        config = ServeConfig(
            workers=2, queue_size=16, timeout_s=20,
            slow_ms=60_000.0, slow_dir=str(tmp_path / "slow"),
        )
        with UpccServer(ServeApp(), config) as running:
            request_json(running.url, "/healthz")
            status, listing = request_json(running.url, "/slow")
        assert status == 200
        assert listing["captures"] == []

    def test_slow_endpoint_404_when_disabled(self, server):
        status, payload = request_json(server.url, "/slow")
        assert status == 404
        assert "--slow-ms" in payload["error"]

    def test_capture_restores_tracer_state_after_drain(self, tmp_path):
        from repro.obs.trace import get_tracer

        assert not get_tracer().enabled
        config = ServeConfig(
            workers=1, queue_size=4, slow_ms=1000.0, slow_dir=str(tmp_path / "slow")
        )
        with UpccServer(ServeApp(), config):
            assert get_tracer().enabled
        assert not get_tracer().enabled


class TestTopDashboard:
    def test_top_once_renders_a_snapshot(self, server, capsys):
        from repro.serve import top as top_mod

        request_json(server.url, "/healthz")
        rc = top_mod.main(["--url", server.url, "--once"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "upcc top" in out
        assert "req/s" in out
        assert "p99=" in out
        assert "/healthz" in out
        assert "\x1b[" not in out  # --once never clears the screen

    def test_top_json_snapshot_shape(self, server, capsys):
        from repro.serve import top as top_mod

        rc = top_mod.main(["--url", server.url, "--once", "--json"])
        assert rc == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert {"requests_total", "latency_ms", "queue_depth", "runtime",
                "caches", "recent_requests"} <= set(snapshot)

    def test_top_fails_cleanly_when_server_is_gone(self, capsys):
        from repro.serve import top as top_mod

        rc = top_mod.main(["--url", "http://127.0.0.1:9", "--once"])
        assert rc == 1
        assert "cannot poll" in capsys.readouterr().err

    def test_cli_top_subcommand_wires_through(self, server, capsys):
        from repro.cli import main as cli_main

        rc = cli_main(["top", "--url", server.url, "--once"])
        assert rc == 0
        assert "upcc top" in capsys.readouterr().out


def _traced_request(server, method, path, headers=None, body=None):
    """One request with arbitrary headers; returns (status, headers, body)."""
    connection = http.client.HTTPConnection(server.host, server.port, timeout=30)
    try:
        connection.request(method, path, body=body, headers=headers or {})
        response = connection.getresponse()
        raw = response.read().decode("utf-8")
        try:
            parsed = json.loads(raw)
        except json.JSONDecodeError:
            parsed = raw
        return response.status, dict(response.getheaders()), parsed
    finally:
        connection.close()


TRACE_ID = "4bf92f3577b34da6a3ce929d0e0e4736"
TRACEPARENT = f"00-{TRACE_ID}-00f067aa0ba902b7-01"


class TestTracePropagation:
    def test_response_echoes_traceparent(self, server):
        status, headers, _ = _traced_request(
            server, "GET", "/healthz", headers={"traceparent": TRACEPARENT}
        )
        assert status == 200
        assert headers.get("traceparent") == TRACEPARENT

    def test_tracestate_is_echoed_too(self, server):
        status, headers, _ = _traced_request(
            server, "GET", "/healthz",
            headers={"traceparent": TRACEPARENT, "tracestate": "rojo=1,congo=2"},
        )
        assert status == 200
        assert headers.get("tracestate") == "rojo=1,congo=2"

    def test_untraced_requests_get_no_traceparent_header(self, server):
        _, headers, _ = _traced_request(server, "GET", "/healthz")
        assert "traceparent" not in headers

    def test_malformed_traceparent_is_ignored(self, server):
        status, headers, _ = _traced_request(
            server, "GET", "/healthz", headers={"traceparent": "garbage"}
        )
        assert status == 200
        assert "traceparent" not in headers

    def test_trace_id_lands_in_access_log_record(self, server):
        _traced_request(server, "GET", "/healthz",
                        headers={"traceparent": TRACEPARENT})
        records = [r for r in server.access.recent() if r["trace_id"] == TRACE_ID]
        assert records, server.access.recent()
        assert records[-1]["path"] == "/healthz"

    def test_trace_id_lands_on_latency_exemplar(self, server, easybiz_xmi):
        xmi_text, library = easybiz_xmi
        body = json.dumps({
            "xmi": xmi_text, "library": library, "root": "HoardingPermit",
        }).encode("utf-8")
        status, _, _ = _traced_request(
            server, "POST", "/generate",
            headers={"traceparent": TRACEPARENT,
                     "Content-Type": "application/json"},
            body=body,
        )
        assert status == 200
        import urllib.request

        from repro.obs.export import OPENMETRICS_CONTENT_TYPE, parse_prometheus_text

        # Exemplars are OpenMetrics-only; the scraper must ask for them.
        request = urllib.request.Request(
            f"{server.url}/metrics",
            headers={"Accept": "application/openmetrics-text"},
        )
        with urllib.request.urlopen(request) as response:
            assert response.headers.get("Content-Type") == OPENMETRICS_CONTENT_TYPE
            text = response.read().decode("utf-8")
        assert text.endswith("# EOF\n")
        families = parse_prometheus_text(text)
        exemplars = families["serve_request_ms"].exemplars
        traced = [
            e for e in exemplars
            if e[2].get("trace_id") == TRACE_ID
            and e[1].get("endpoint") == "generate"
        ]
        assert traced, exemplars
        name, labels, exemplar_labels, value, ts = traced[-1]
        # The exemplar's value sits within its bucket's le bound:
        le = labels["le"]
        assert le == "+Inf" or value <= float(le)
        assert len(exemplar_labels["request_id"]) >= 12

    def test_plain_scrape_stays_classic_prometheus(self, server):
        # A stock Prometheus scraper (no OpenMetrics Accept header) must
        # get a classic 0.0.4 payload: its parser fails the whole scrape
        # on the '#' of an inline exemplar.
        _traced_request(server, "GET", "/healthz",
                        headers={"traceparent": TRACEPARENT})
        import urllib.request

        from repro.obs.export import PROMETHEUS_CONTENT_TYPE, parse_prometheus_text

        with urllib.request.urlopen(f"{server.url}/metrics") as response:
            assert response.headers.get("Content-Type") == PROMETHEUS_CONTENT_TYPE
            text = response.read().decode("utf-8")
        assert " # {" not in text
        assert "# EOF" not in text
        families = parse_prometheus_text(text)
        assert all(family.exemplars == [] for family in families.values())

    def test_responses_total_counts_by_status_code(self, server):
        request_json(server.url, "/healthz")
        snapshot = get_registry().snapshot()
        assert snapshot["serve.responses_total{code=200}"] >= 1


class TestSlowCaptureTracing:
    def test_slow_capture_carries_trace_id_and_slow_filter_finds_it(self, tmp_path):
        config = ServeConfig(
            workers=2, queue_size=16, slow_ms=0.0,
            slow_dir=str(tmp_path / "slow"),
        )
        with UpccServer(ServeApp(), config) as server:
            status, _, _ = _traced_request(
                server, "GET", "/healthz", headers={"traceparent": TRACEPARENT}
            )
            assert status == 200
            status, payload = request_json(server.url, f"/slow?trace_id={TRACE_ID}")
            assert status == 200
            assert payload["captures"], payload
            assert all(c["trace_id"] == TRACE_ID for c in payload["captures"])
            # The captured span tree records the W3C identity on its root:
            jsonl = tmp_path / "slow" / payload["captures"][-1]["jsonl"]
            spans = [json.loads(line) for line in jsonl.read_text().splitlines()]
            roots = [s for s in spans if s["parent_id"] is None]
            assert roots[0]["attributes"]["trace_id"] == TRACE_ID
            assert roots[0]["attributes"]["parent_span"] == "00f067aa0ba902b7"
            # A bogus filter matches nothing:
            status, payload = request_json(server.url, "/slow?trace_id=" + "f" * 32)
            assert payload["captures"] == []

    def test_slow_payload_surfaces_exemplars(self, tmp_path):
        config = ServeConfig(
            workers=2, queue_size=16, slow_ms=0.0,
            slow_dir=str(tmp_path / "slow"),
        )
        with UpccServer(ServeApp(), config) as server:
            _traced_request(server, "GET", "/healthz",
                            headers={"traceparent": TRACEPARENT})
            status, payload = request_json(server.url, "/slow")
            assert status == 200
            traced = [e for e in payload["exemplars"] if e["trace_id"] == TRACE_ID]
            assert traced, payload["exemplars"]
            assert any(e["endpoint"] == "healthz" for e in traced)


class TestAlertsEndpoint:
    def test_alerts_endpoint_reports_default_slos(self, server):
        status, payload = request_json(server.url, "/alerts")
        assert status == 200
        assert {spec["name"] for spec in payload["slos"]} == {
            "availability-5xx", "latency-p99-1s",
        }
        assert isinstance(payload["alerts"], list)

    def test_error_burst_fires_and_steady_traffic_resolves(self, tmp_path):
        slo_file = tmp_path / "slo.json"
        slo_file.write_text(json.dumps({"slos": [{
            "name": "avail-4xx", "objective": 0.9, "kind": "availability",
            "error_classes": ["4xx"], "fast_window_s": 0.4,
            "slow_window_s": 1.2, "burn_threshold": 1.0,
        }]}))
        alert_log = tmp_path / "alerts.jsonl"
        config = ServeConfig(
            workers=2, queue_size=16, runtime_interval_s=0.1,
            slo_file=str(slo_file), alert_log=str(alert_log),
        )
        with UpccServer(ServeApp(), config) as server:
            # Error burst: malformed JSON bodies are 400s (the injected
            # error class the spec above counts against the budget).
            for _ in range(10):
                status, _, _ = _traced_request(
                    server, "POST", "/validate",
                    headers={"Content-Type": "application/json",
                             "Content-Length": "9"},
                    body=b"{not json",
                )
                assert status == 400
            deadline = time.monotonic() + 5.0
            fired = None
            while time.monotonic() < deadline:
                status, payload = request_json(server.url, "/alerts")
                statuses = {s["name"]: s for s in payload["statuses"]}
                if statuses.get("avail-4xx", {}).get("state") == "firing":
                    fired = statuses["avail-4xx"]
                    break
                time.sleep(0.05)
            assert fired is not None, "SLO never fired within the fast window"
            assert fired["burn_fast"] > 1.0
            assert fired["budget_remaining"] < 1.0
            # Steady healthy traffic ages the burst out of both windows:
            deadline = time.monotonic() + 6.0
            resolved = False
            while time.monotonic() < deadline:
                request_json(server.url, "/healthz")
                status, payload = request_json(server.url, "/alerts")
                statuses = {s["name"]: s for s in payload["statuses"]}
                if statuses.get("avail-4xx", {}).get("state") == "ok":
                    resolved = True
                    break
                time.sleep(0.05)
            assert resolved, "SLO never resolved under steady traffic"
            states = [a["state"] for a in payload["alerts"] if a["slo"] == "avail-4xx"]
            assert states[:2] == ["firing", "resolved"]
        # The alert ring survived on disk:
        lines = [json.loads(l) for l in alert_log.read_text().splitlines()]
        assert [l["state"] for l in lines][:2] == ["firing", "resolved"]


class TestLoadGeneratorTracing:
    def test_loadgen_originates_trace_ids_visible_in_access_log(
        self, server, easybiz_xmi
    ):
        generated = _generate(server, easybiz_xmi)
        instance = InstanceGenerator(
            SchemaSet([parse_schema(t) for t in generated["schemas"].values()])
        ).generate_string("HoardingPermit")
        payload = {"schema_set": generated["schema_set"], "documents": [instance]}
        result = run_load(
            server.url, "/validate", payload, requests=6, concurrency=2
        )
        assert result.ok == 6
        assert len(result.trace_ids) == 6
        assert len(set(result.trace_ids)) == 6  # each request its own trace
        logged = {r["trace_id"] for r in server.access.recent()}
        assert set(result.trace_ids) <= logged

    def test_no_trace_flag_sends_no_traceparent(self, server, easybiz_xmi):
        generated = _generate(server, easybiz_xmi)
        instance = InstanceGenerator(
            SchemaSet([parse_schema(t) for t in generated["schemas"].values()])
        ).generate_string("HoardingPermit")
        payload = {"schema_set": generated["schema_set"], "documents": [instance]}
        result = run_load(
            server.url, "/validate", payload, requests=2, concurrency=1,
            trace=False,
        )
        assert result.ok == 2
        assert result.trace_ids == []

    def test_error_rate_injects_deterministic_400s(self, server, easybiz_xmi):
        generated = _generate(server, easybiz_xmi)
        instance = InstanceGenerator(
            SchemaSet([parse_schema(t) for t in generated["schemas"].values()])
        ).generate_string("HoardingPermit")
        payload = {"schema_set": generated["schema_set"], "documents": [instance]}
        result = run_load(
            server.url, "/validate", payload, requests=8, concurrency=2,
            error_rate=0.25,
        )
        assert result.injected_errors == 2  # indices 0 and 4 of 8
        assert result.failed == result.injected_errors
        assert result.ok == 8 - result.injected_errors
        snapshot = get_registry().snapshot()
        assert snapshot.get("serve.responses_total{code=400}", 0) >= 2


class TestTopResilience:
    def test_top_loop_mode_retries_with_backoff(self, capsys, monkeypatch):
        from repro.serve import top as top_mod

        sleeps = []
        monkeypatch.setattr(top_mod.time, "sleep", sleeps.append)
        rc = top_mod.main([
            "--url", "http://127.0.0.1:9", "--interval", "0.1",
            "--max-poll-failures", "3",
        ])
        err = capsys.readouterr().err
        assert rc == 1
        assert err.count("retrying in") == 2  # two backoffs, then give up
        assert sleeps == [0.1, 0.2]  # exponential
        assert "cannot poll" in err

    def test_top_once_still_fails_fast(self, capsys):
        from repro.serve import top as top_mod

        rc = top_mod.main([
            "--url", "http://127.0.0.1:9", "--once", "--max-poll-failures", "5",
        ])
        assert rc == 1
        assert "retrying" not in capsys.readouterr().err

    def test_top_board_shows_slo_panel(self, server, capsys):
        from repro.serve import top as top_mod

        rc = top_mod.main(["--url", server.url, "--once"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "slo" in out
        assert "availability-5xx" in out
        assert "burn fast=" in out

    def test_top_json_snapshot_includes_slo(self, server, capsys):
        from repro.serve import top as top_mod

        rc = top_mod.main(["--url", server.url, "--once", "--json"])
        assert rc == 0
        snapshot = json.loads(capsys.readouterr().out)
        names = {s["name"] for s in snapshot["slo"]["statuses"]}
        assert {"availability-5xx", "latency-p99-1s"} <= names


class TestBadRequestAccessLogging:
    def test_malformed_body_lands_in_access_log(self, server):
        status, _, _ = _traced_request(
            server, "POST", "/validate",
            headers={"Content-Type": "application/json",
                     "traceparent": TRACEPARENT},
            body=b"{not json",
        )
        assert status == 400
        bad = [r for r in server.access.recent() if r["status"] == 400]
        assert bad, server.access.recent()
        assert bad[-1]["path"] == "/validate"
        assert bad[-1]["trace_id"] == TRACE_ID
