"""Unit tests for NDR name derivation."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import NamingError
from repro.ndr.names import (
    asbie_element_name,
    attribute_name,
    bbie_element_name,
    complex_type_name,
    enum_simple_type_name,
    sanitize_ncname,
    truncate_den,
    xml_name_from_den,
)
from repro.xmlutil.escape import is_valid_ncname


class TestSanitize:
    def test_plain_name_unchanged(self):
        assert sanitize_ncname("HoardingPermit") == "HoardingPermit"

    def test_underscores_survive(self):
        # Figure 6 line 15: BillingPerson_Identification
        assert sanitize_ncname("Person_Identification") == "Person_Identification"

    def test_den_separators_removed(self):
        assert sanitize_ncname("Person. First Name. Text") == "PersonFirstNameText"

    def test_leading_digit_prefixed(self):
        assert sanitize_ncname("1stChoice") == "_1stChoice"

    def test_empty_after_cleanup_raises(self):
        with pytest.raises(NamingError):
            sanitize_ncname("!!!")

    @given(st.from_regex(r"[A-Za-z][A-Za-z0-9_. \-]{0,20}", fullmatch=True))
    def test_always_produces_valid_ncname(self, name):
        assert is_valid_ncname(sanitize_ncname(name))


class TestTypeNames:
    def test_complex_type_postfix(self):
        assert complex_type_name("HoardingPermit") == "HoardingPermitType"

    def test_enum_type_postfix(self):
        assert enum_simple_type_name("CountryType_Code") == "CountryType_CodeType"

    def test_bbie_element_name_is_attribute_name(self):
        assert bbie_element_name("ClosureReason") == "ClosureReason"

    def test_attribute_name(self):
        assert attribute_name("CodeListAgName") == "CodeListAgName"


class TestAsbieCompoundNames:
    @pytest.mark.parametrize(
        "role,target,expected",
        [
            ("Included", "Attachment", "IncludedAttachment"),
            ("Current", "Application", "CurrentApplication"),
            ("Included", "Registration", "IncludedRegistration"),
            ("Billing", "Person_Identification", "BillingPerson_Identification"),
            ("Assigned", "Address", "AssignedAddress"),
            ("Personal", "Signature", "PersonalSignature"),
        ],
    )
    def test_figure6_and_7_names(self, role, target, expected):
        assert asbie_element_name(role, target) == expected


class TestTruncation:
    def test_repeated_word_dropped(self):
        assert truncate_den("Address. Country Name. Name") == "Address. Country Name"

    def test_text_representation_dropped(self):
        assert truncate_den("Person. First Name. Text") == "Person. First Name"

    def test_distinct_terms_kept(self):
        assert truncate_den("Person. Birth. Date") == "Person. Birth. Date"

    def test_single_component_unchanged(self):
        assert truncate_den("Person") == "Person"

    def test_den_to_xml_name(self):
        assert xml_name_from_den("Person. First Name. Text") == "PersonFirstNameText"
