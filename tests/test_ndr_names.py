"""Unit tests for NDR name derivation."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import NamingError
from repro.ndr.names import (
    asbie_element_name,
    attribute_name,
    bbie_element_name,
    complex_type_name,
    enum_simple_type_name,
    sanitize_ncname,
    truncate_den,
    xml_name_from_den,
)
from repro.xmlutil.escape import is_valid_ncname


class TestSanitize:
    def test_plain_name_unchanged(self):
        assert sanitize_ncname("HoardingPermit") == "HoardingPermit"

    def test_underscores_survive(self):
        # Figure 6 line 15: BillingPerson_Identification
        assert sanitize_ncname("Person_Identification") == "Person_Identification"

    def test_den_separators_removed(self):
        assert sanitize_ncname("Person. First Name. Text") == "PersonFirstNameText"

    def test_leading_digit_prefixed(self):
        assert sanitize_ncname("1stChoice") == "_1stChoice"

    @pytest.mark.parametrize(
        "raw,expected",
        [
            ("-Margin", "_-Margin"),
            (".NetVersion", "_.NetVersion"),
            ("--Dashes", "_--Dashes"),
            ("!-Leading", "_-Leading"),
        ],
    )
    def test_leading_hyphen_or_period_prefixed(self, raw, expected):
        assert sanitize_ncname(raw) == expected
        assert is_valid_ncname(sanitize_ncname(raw))

    def test_empty_after_cleanup_raises(self):
        with pytest.raises(NamingError):
            sanitize_ncname("!!!")

    @given(st.from_regex(r"[A-Za-z][A-Za-z0-9_. \-]{0,20}", fullmatch=True))
    def test_always_produces_valid_ncname(self, name):
        assert is_valid_ncname(sanitize_ncname(name))

    @given(st.from_regex(r"[A-Za-z0-9_. \-]{1,20}", fullmatch=True))
    def test_any_cleanable_input_produces_valid_ncname(self, name):
        try:
            cleaned = sanitize_ncname(name)
        except NamingError:
            return  # nothing left after cleanup -- acceptable failure mode
        assert is_valid_ncname(cleaned)


class TestTypeNames:
    def test_complex_type_postfix(self):
        assert complex_type_name("HoardingPermit") == "HoardingPermitType"

    def test_enum_type_postfix(self):
        assert enum_simple_type_name("CountryType_Code") == "CountryType_CodeType"

    def test_bbie_element_name_is_attribute_name(self):
        assert bbie_element_name("ClosureReason") == "ClosureReason"

    def test_attribute_name(self):
        assert attribute_name("CodeListAgName") == "CodeListAgName"


class TestAsbieCompoundNames:
    @pytest.mark.parametrize(
        "role,target,expected",
        [
            ("Included", "Attachment", "IncludedAttachment"),
            ("Current", "Application", "CurrentApplication"),
            ("Included", "Registration", "IncludedRegistration"),
            ("Billing", "Person_Identification", "BillingPerson_Identification"),
            ("Assigned", "Address", "AssignedAddress"),
            ("Personal", "Signature", "PersonalSignature"),
        ],
    )
    def test_figure6_and_7_names(self, role, target, expected):
        assert asbie_element_name(role, target) == expected


class TestTruncation:
    @pytest.mark.parametrize(
        "den,expected",
        [
            # Repeated trailing word(s) of the property term are dropped.
            ("Address. Country Name. Name", "Address. Country Name"),
            ("Trade. Exchange Rate. Rate", "Trade. Exchange Rate"),
            ("Order. Unit Price Amount. Price Amount", "Order. Unit Price Amount"),
            # Text representation terms are always dropped.
            ("Person. First Name. Text", "Person. First Name"),
            # Distinct terms are kept.
            ("Person. Birth. Date", "Person. Birth. Date"),
            # Whole-word comparison: a raw-substring match is NOT a repeat.
            ("Person. Birthdate. Date", "Person. Birthdate. Date"),
            ("Loan. Prorate. Rate", "Loan. Prorate. Rate"),
            ("Goods. Forwarder. Order", "Goods. Forwarder. Order"),
            # Representation longer than the property term is kept.
            ("Fee. Rate. Exchange Rate", "Fee. Rate. Exchange Rate"),
            # Single component passes through untouched.
            ("Person", "Person"),
        ],
    )
    def test_truncation_table(self, den, expected):
        assert truncate_den(den) == expected

    def test_den_to_xml_name(self):
        assert xml_name_from_den("Person. First Name. Text") == "PersonFirstNameText"
