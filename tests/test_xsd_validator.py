"""Unit tests for the instance validator."""

import pytest

from repro.errors import InstanceValidationError, SchemaError
from repro.xmlutil.qname import QName
from repro.xsd.components import (
    AttributeDecl,
    AttributeUse,
    ComplexType,
    ElementDecl,
    Facet,
    Schema,
    SequenceGroup,
    SimpleContent,
    SimpleType,
)
from repro.xsd.components import xsd
from repro.xsd.validator import SchemaSet, assert_valid, validate_instance

NS = "urn:v"


def _schema_set() -> SchemaSet:
    schema = Schema(NS, prefixes={"v": NS})
    schema.items.append(
        SimpleType("CurrencyCodeType", base=xsd("token"), facets=[Facet("enumeration", "EUR"), Facet("enumeration", "USD")])
    )
    schema.items.append(
        ComplexType(
            "AmountType",
            simple_content=SimpleContent(
                base=xsd("decimal"),
                derivation="extension",
                attributes=[
                    AttributeDecl("currency", QName(NS, "CurrencyCodeType"), AttributeUse.REQUIRED),
                    AttributeDecl("note", xsd("string"), AttributeUse.OPTIONAL),
                ],
            ),
        )
    )
    schema.items.append(
        ComplexType(
            "RestrictedAmountType",
            simple_content=SimpleContent(
                base=QName(NS, "AmountType"),
                derivation="restriction",
                attributes=[AttributeDecl("note", xsd("string"), AttributeUse.PROHIBITED)],
            ),
        )
    )
    schema.items.append(
        ComplexType(
            "OrderType",
            particle=SequenceGroup(
                [
                    ElementDecl(name="Id", type=xsd("integer")),
                    ElementDecl(name="Total", type=QName(NS, "AmountType"), min_occurs=0),
                    ElementDecl(name="Net", type=QName(NS, "RestrictedAmountType"), min_occurs=0),
                ]
            ),
        )
    )
    schema.items.append(ElementDecl(name="Order", type=QName(NS, "OrderType")))
    return SchemaSet([schema])


def _doc(body: str) -> str:
    return f'<v:Order xmlns:v="{NS}">{body}</v:Order>'


class TestHappyPath:
    def test_minimal_valid(self):
        assert validate_instance(_schema_set(), _doc("<v:Id>7</v:Id>")) == []

    def test_full_valid(self):
        doc = _doc('<v:Id>7</v:Id><v:Total currency="EUR" note="n">12.50</v:Total>')
        assert validate_instance(_schema_set(), doc) == []

    def test_assert_valid_passes(self):
        assert_valid(_schema_set(), _doc("<v:Id>7</v:Id>"))


class TestStructureErrors:
    def test_unknown_root(self):
        problems = validate_instance(_schema_set(), f'<v:Nope xmlns:v="{NS}"/>')
        assert problems and "no global element" in problems[0].message

    def test_missing_required_child(self):
        problems = validate_instance(_schema_set(), _doc(""))
        assert problems and "content model mismatch" in problems[0].message

    def test_wrong_order(self):
        doc = _doc('<v:Total currency="EUR">1</v:Total><v:Id>7</v:Id>')
        assert validate_instance(_schema_set(), doc)

    def test_unexpected_text_in_complex_type(self):
        doc = _doc("chatter<v:Id>7</v:Id>")
        problems = validate_instance(_schema_set(), doc)
        assert any("character content" in p.message for p in problems)

    def test_problem_paths_are_informative(self):
        doc = _doc('<v:Id>7</v:Id><v:Total currency="EUR">abc</v:Total>')
        problems = validate_instance(_schema_set(), doc)
        assert problems[0].path == "/Order/Total"


class TestSimpleContent:
    def test_bad_decimal(self):
        doc = _doc('<v:Id>7</v:Id><v:Total currency="EUR">twelve</v:Total>')
        problems = validate_instance(_schema_set(), doc)
        assert any("not a valid decimal" in p.message for p in problems)

    def test_missing_required_attribute(self):
        doc = _doc("<v:Id>7</v:Id><v:Total>12.50</v:Total>")
        problems = validate_instance(_schema_set(), doc)
        assert any("missing required attribute 'currency'" in p.message for p in problems)

    def test_enum_typed_attribute(self):
        doc = _doc('<v:Id>7</v:Id><v:Total currency="XXX">1</v:Total>')
        problems = validate_instance(_schema_set(), doc)
        assert any("enumerated" in p.message for p in problems)

    def test_undeclared_attribute(self):
        doc = _doc('<v:Id>7</v:Id><v:Total currency="EUR" bogus="1">1</v:Total>')
        problems = validate_instance(_schema_set(), doc)
        assert any("undeclared attribute" in p.message for p in problems)

    def test_restriction_inherits_required_attribute(self):
        doc = _doc("<v:Id>7</v:Id><v:Net>1</v:Net>")
        problems = validate_instance(_schema_set(), doc)
        assert any("missing required attribute 'currency'" in p.message for p in problems)

    def test_restriction_prohibits_attribute(self):
        doc = _doc('<v:Id>7</v:Id><v:Net currency="EUR" note="n">1</v:Net>')
        problems = validate_instance(_schema_set(), doc)
        assert any("prohibited" in p.message for p in problems)

    def test_children_under_simple_content(self):
        doc = _doc('<v:Id>7</v:Id><v:Total currency="EUR"><v:Id>1</v:Id></v:Total>')
        problems = validate_instance(_schema_set(), doc)
        assert any("simple content" in p.message for p in problems)


class TestSchemaSetMechanics:
    def test_schema_for_unknown_namespace(self):
        with pytest.raises(SchemaError):
            _schema_set().schema_for("urn:none")

    def test_find_type_and_element(self):
        schema_set = _schema_set()
        assert schema_set.find_type(QName(NS, "OrderType")) is not None
        assert schema_set.find_type(QName(NS, "Nope")) is None
        assert schema_set.find_global_element(QName(NS, "Order")) is not None
        assert schema_set.find_global_element(QName("urn:none", "Order")) is None

    def test_xsi_attributes_ignored(self):
        doc = (
            f'<v:Order xmlns:v="{NS}" xmlns:xsi="http://www.w3.org/2001/XMLSchema-instance" '
            f'xsi:schemaLocation="x y"><v:Id>7</v:Id></v:Order>'
        )
        assert validate_instance(_schema_set(), doc) == []

    def test_undeclared_prefix_raises(self):
        with pytest.raises(InstanceValidationError):
            validate_instance(_schema_set(), "<w:Order><w:Id>7</w:Id></w:Order>")

    def test_assert_valid_raises(self):
        with pytest.raises(InstanceValidationError):
            assert_valid(_schema_set(), _doc(""))

    def test_backtracking_engine_agrees(self):
        doc = _doc('<v:Id>7</v:Id><v:Total currency="EUR">1</v:Total>')
        assert validate_instance(_schema_set(), doc, engine="backtracking") == []
        assert validate_instance(_schema_set(), _doc(""), engine="backtracking")
