"""Unit tests for business contexts."""

from repro.ccts.context import BusinessContext, ContextCategory


class TestConstruction:
    def test_build_with_string_and_list(self):
        ctx = BusinessContext.build("US retail", geopolitical="US", industry_classification=["Retail"])
        assert ctx.value_of(ContextCategory.GEOPOLITICAL) == ("US",)
        assert ctx.value_of(ContextCategory.INDUSTRY_CLASSIFICATION) == ("Retail",)

    def test_unused_category_is_empty(self):
        ctx = BusinessContext.build(geopolitical="US")
        assert ctx.value_of(ContextCategory.BUSINESS_PROCESS) == ()

    def test_eight_categories_exist(self):
        assert len(ContextCategory) == 8

    def test_unconstrained(self):
        assert BusinessContext().is_unconstrained
        assert not BusinessContext.build(geopolitical="US").is_unconstrained


class TestSubcontext:
    def test_everything_is_subcontext_of_unconstrained(self):
        us = BusinessContext.build(geopolitical="US")
        assert us.is_subcontext_of(BusinessContext())

    def test_matching_token(self):
        us = BusinessContext.build(geopolitical="US")
        north_america = BusinessContext.build(geopolitical=["US", "CA"])
        assert us.is_subcontext_of(north_america)
        assert not north_america.is_subcontext_of(us)

    def test_unconstrained_category_fails_against_constrained(self):
        anything = BusinessContext()
        us = BusinessContext.build(geopolitical="US")
        assert not anything.is_subcontext_of(us)

    def test_disjoint_tokens_fail(self):
        at = BusinessContext.build(geopolitical="AT")
        us = BusinessContext.build(geopolitical="US")
        assert not at.is_subcontext_of(us)

    def test_reflexive(self):
        ctx = BusinessContext.build(geopolitical="US", business_process="Procurement")
        assert ctx.is_subcontext_of(ctx)


class TestDescribe:
    def test_describe_unconstrained(self):
        assert BusinessContext().describe() == "(all contexts)"

    def test_describe_lists_assignments(self):
        ctx = BusinessContext.build(geopolitical=["US", "CA"])
        assert "Geopolitical=US|CA" in ctx.describe()

    def test_str_prefers_name(self):
        assert str(BusinessContext.build("retail", geopolitical="US")) == "retail"
