"""Unit tests for dictionary entry names and qualifiers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import NamingError
from repro.ccts.naming import (
    apply_qualifier,
    ccts_den_for_acc,
    ccts_den_for_ascc,
    ccts_den_for_bcc,
    compact_component_set,
    compact_den,
    join_den,
    qualified_term,
    split_words,
    strip_qualifier,
    words_to_term,
)


class TestSplitWords:
    @pytest.mark.parametrize(
        "name,expected",
        [
            ("DateOfBirth", ["Date", "Of", "Birth"]),
            ("FirstName", ["First", "Name"]),
            ("US_Address", ["US", "Address"]),
            ("code", ["code"]),
            ("XMLSchema", ["XML", "Schema"]),
            ("snake_case_name", ["snake", "case", "name"]),
            ("dotted.name", ["dotted", "name"]),
            ("ABC", ["ABC"]),
        ],
    )
    def test_splitting(self, name, expected):
        assert split_words(name) == expected

    def test_empty_raises(self):
        with pytest.raises(NamingError):
            split_words("")

    def test_separator_only_raises(self):
        with pytest.raises(NamingError):
            split_words("___")


class TestDenConstruction:
    def test_acc_den(self):
        assert ccts_den_for_acc("Person") == "Person. Details"

    def test_qualified_acc_den(self):
        assert ccts_den_for_acc("Person", "US") == "US_ Person. Details"

    def test_bcc_den(self):
        assert ccts_den_for_bcc("Person", "DateOfBirth", "Date") == "Person. Date Of Birth. Date"

    def test_ascc_den(self):
        assert ccts_den_for_ascc("Person", "Private", "Address") == "Person. Private. Address"

    def test_ascc_den_with_qualifiers(self):
        den = ccts_den_for_ascc("Person", "Private", "Address", "US", "US")
        assert den == "US_ Person. Private. US_ Address"

    def test_join_den_skips_empty(self):
        assert join_den("A", "", "B") == "A. B"

    def test_join_den_empty_raises(self):
        with pytest.raises(NamingError):
            join_den("", "")

    def test_words_to_term(self):
        assert words_to_term("CodeListName") == "Code List Name"

    def test_qualified_term(self):
        assert qualified_term("Person", "US") == "US_ Person"
        assert qualified_term("Person", None) == "Person"


class TestCompactStyle:
    def test_compact_den(self):
        assert compact_den("Person", "Private", "Address") == "Person.Private.Address"

    def test_compact_den_empty_raises(self):
        with pytest.raises(NamingError):
            compact_den()

    def test_component_set_matches_paper_section_21(self):
        entries = compact_component_set(
            "Person",
            ["DateofBirth", "FirstName"],
            [("Private", "Address"), ("Work", "Address")],
        )
        assert entries == [
            "Person (ACC)",
            "Person.DateofBirth (BCC)",
            "Person.FirstName (BCC)",
            "Person.Private.Address (ASCC)",
            "Person.Work.Address (ASCC)",
        ]

    def test_component_set_business_labels(self):
        entries = compact_component_set(
            "US_Person", ["FirstName"], [], kind_labels=("ABIE", "BBIE", "ASBIE")
        )
        assert entries == ["US_Person (ABIE)", "US_Person.FirstName (BBIE)"]


class TestQualifiers:
    def test_strip(self):
        assert strip_qualifier("US_Person") == ("US", "Person")
        assert strip_qualifier("Person") == (None, "Person")
        assert strip_qualifier("_Person") == (None, "_Person")
        assert strip_qualifier("Person_") == (None, "Person_")

    def test_apply(self):
        assert apply_qualifier("US", "Person") == "US_Person"
        assert apply_qualifier(None, "Person") == "Person"

    @given(st.from_regex(r"[A-Z]{1,4}", fullmatch=True), st.from_regex(r"[A-Z][a-z]{1,8}", fullmatch=True))
    def test_apply_strip_round_trip(self, qualifier, name):
        assert strip_qualifier(apply_qualifier(qualifier, name)) == (qualifier, name)

    @given(st.from_regex(r"[A-Z][a-zA-Z0-9]{0,10}", fullmatch=True))
    def test_split_words_rejoin_preserves_letters(self, name):
        assert "".join(split_words(name)) == name
