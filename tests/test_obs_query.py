"""Tests for repro.obs.query -- offline telemetry filtering.

Covers the pure filters (status classes, time bounds), rotated
access-log discovery, slow-capture summarization from span-tree JSONL
files, alert-ring queries, tolerance of malformed lines, and the
``upcc obs query`` CLI wiring.
"""

from __future__ import annotations

import json

import pytest

from repro.obs.query import (
    access_log_paths,
    main,
    parse_when,
    query_access_log,
    query_alerts,
    query_slow_captures,
    read_jsonl,
    status_matches,
)


def _write_jsonl(path, records):
    path.write_text(
        "".join(json.dumps(r, sort_keys=True) + "\n" for r in records),
        encoding="utf-8",
    )


ACCESS_RECORDS = [
    {"ts": 100.0, "method": "POST", "path": "/validate", "status": 200,
     "request_id": "req-a", "trace_id": "a" * 32},
    {"ts": 200.0, "method": "POST", "path": "/validate", "status": 400,
     "request_id": "req-b", "trace_id": "b" * 32},
    {"ts": 300.0, "method": "GET", "path": "/healthz", "status": 200,
     "request_id": "req-c", "trace_id": ""},
    {"ts": 400.0, "method": "POST", "path": "/validate", "status": 503,
     "request_id": "req-d", "trace_id": "d" * 32},
]


class TestStatusMatching:
    @pytest.mark.parametrize("status,pattern,expected", [
        (200, "200", True),
        (200, "2xx", True),
        (404, "4xx", True),
        (503, "5xx", True),
        (200, "4xx", False),
        (200, "201", False),
        ("503", "503", True),
        (40, "4xx", False),  # class patterns need three digits
    ])
    def test_matches(self, status, pattern, expected):
        assert status_matches(status, pattern) is expected


class TestParseWhen:
    def test_none_passes_through(self):
        assert parse_when(None) is None

    def test_unix_seconds(self):
        assert parse_when("1723100000.5") == 1723100000.5

    def test_iso_naive_is_utc(self):
        assert parse_when("1970-01-01T00:01:40") == 100.0

    def test_iso_with_offset(self):
        assert parse_when("1970-01-01T01:01:40+01:00") == 100.0

    def test_garbage_raises(self):
        with pytest.raises(ValueError):
            parse_when("yesterday")


class TestReadJsonl:
    def test_missing_file_yields_nothing(self, tmp_path):
        assert list(read_jsonl(tmp_path / "absent.jsonl")) == []

    def test_malformed_lines_are_skipped(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_text('{"ok": 1}\n{broken\n\n[1, 2]\n{"ok": 2}\n')
        assert list(read_jsonl(path)) == [{"ok": 1}, {"ok": 2}]


class TestAccessLogQuery:
    def test_filter_by_trace_id(self, tmp_path):
        log = tmp_path / "access.jsonl"
        _write_jsonl(log, ACCESS_RECORDS)
        matches = query_access_log(log, trace_id="b" * 32)
        assert [m["request_id"] for m in matches] == ["req-b"]

    def test_filter_by_request_id(self, tmp_path):
        log = tmp_path / "access.jsonl"
        _write_jsonl(log, ACCESS_RECORDS)
        matches = query_access_log(log, request_id="req-d")
        assert [m["status"] for m in matches] == [503]

    def test_filter_by_status_class(self, tmp_path):
        log = tmp_path / "access.jsonl"
        _write_jsonl(log, ACCESS_RECORDS)
        matches = query_access_log(log, status="4xx")
        assert [m["request_id"] for m in matches] == ["req-b"]

    def test_filter_by_time_window(self, tmp_path):
        log = tmp_path / "access.jsonl"
        _write_jsonl(log, ACCESS_RECORDS)
        matches = query_access_log(log, since=150.0, until=350.0)
        assert [m["request_id"] for m in matches] == ["req-b", "req-c"]

    def test_limit_keeps_newest(self, tmp_path):
        log = tmp_path / "access.jsonl"
        _write_jsonl(log, ACCESS_RECORDS)
        matches = query_access_log(log, limit=2)
        assert [m["request_id"] for m in matches] == ["req-c", "req-d"]

    def test_rotated_generations_read_oldest_first(self, tmp_path):
        log = tmp_path / "access.jsonl"
        _write_jsonl(tmp_path / "access.jsonl.2", ACCESS_RECORDS[:1])
        _write_jsonl(tmp_path / "access.jsonl.1", ACCESS_RECORDS[1:2])
        _write_jsonl(log, ACCESS_RECORDS[2:])
        assert [p.name for p in access_log_paths(log)] == [
            "access.jsonl.2", "access.jsonl.1", "access.jsonl",
        ]
        matches = query_access_log(log)
        assert [m["request_id"] for m in matches] == [
            "req-a", "req-b", "req-c", "req-d",
        ]

    def test_missing_log_is_empty(self, tmp_path):
        assert query_access_log(tmp_path / "nope.jsonl") == []


def _write_capture(directory, seq, request_id, trace_id, *, status=200,
                   endpoint="validate", duration_ms=120.0):
    directory.mkdir(parents=True, exist_ok=True)
    root = {
        "name": "serve.request", "duration_ms": duration_ms, "cpu_ms": 1.0,
        "status": "ok", "id": "root", "parent_id": None,
        "attributes": {"endpoint": endpoint, "trace_id": trace_id,
                       "status": status},
    }
    child = {"name": "app.validate", "duration_ms": 100.0, "cpu_ms": 1.0,
             "status": "ok", "id": "c1", "parent_id": "root"}
    _write_jsonl(directory / f"slow-{seq:06d}-{request_id}.jsonl", [root, child])


class TestSlowCaptureQuery:
    def test_summaries_from_span_trees(self, tmp_path):
        slow = tmp_path / "slow"
        _write_capture(slow, 1, "req-a", "a" * 32)
        _write_capture(slow, 2, "req-b", "b" * 32, status=400)
        summaries = query_slow_captures(slow)
        assert [s["request_id"] for s in summaries] == ["req-a", "req-b"]
        assert summaries[0]["trace_id"] == "a" * 32
        assert summaries[0]["spans"] == 2
        assert summaries[0]["endpoint"] == "validate"

    def test_filter_by_trace_and_status(self, tmp_path):
        slow = tmp_path / "slow"
        _write_capture(slow, 1, "req-a", "a" * 32)
        _write_capture(slow, 2, "req-b", "b" * 32, status=400)
        assert [s["request_id"] for s in query_slow_captures(slow, trace_id="b" * 32)] == ["req-b"]
        assert [s["request_id"] for s in query_slow_captures(slow, status="4xx")] == ["req-b"]

    def test_missing_directory_is_empty(self, tmp_path):
        assert query_slow_captures(tmp_path / "nope") == []


ALERTS = [
    {"ts": 10.0, "slo": "avail", "state": "firing", "burn_fast": 20.0},
    {"ts": 20.0, "slo": "avail", "state": "resolved", "burn_fast": 0.0},
    {"ts": 30.0, "slo": "latency", "state": "firing", "burn_fast": 3.0},
]


class TestAlertQuery:
    def test_filter_by_slo_and_state(self, tmp_path):
        ring = tmp_path / "alerts.jsonl"
        _write_jsonl(ring, ALERTS)
        assert len(query_alerts(ring, slo="avail")) == 2
        firing = query_alerts(ring, state="firing")
        assert [a["slo"] for a in firing] == ["avail", "latency"]

    def test_time_window(self, tmp_path):
        ring = tmp_path / "alerts.jsonl"
        _write_jsonl(ring, ALERTS)
        assert [a["ts"] for a in query_alerts(ring, since=15.0, until=25.0)] == [20.0]


class TestCli:
    def test_requires_a_source(self, capsys):
        assert main(["--trace-id", "a" * 32]) == 2
        assert "nothing to query" in capsys.readouterr().err

    def test_bad_time_bound(self, tmp_path, capsys):
        log = tmp_path / "access.jsonl"
        _write_jsonl(log, ACCESS_RECORDS)
        assert main(["--access-log", str(log), "--since", "lately"]) == 2
        assert "ISO-8601" in capsys.readouterr().err

    def test_jsonl_output_tags_sources(self, tmp_path, capsys):
        log = tmp_path / "access.jsonl"
        _write_jsonl(log, ACCESS_RECORDS)
        ring = tmp_path / "alerts.jsonl"
        _write_jsonl(ring, ALERTS)
        rc = main([
            "--access-log", str(log), "--alerts", str(ring),
            "--status", "4xx", "--slo", "latency",
        ])
        captured = capsys.readouterr()
        assert rc == 0
        lines = [json.loads(l) for l in captured.out.splitlines()]
        assert {l["source"] for l in lines} == {"access", "alerts"}
        assert "match(es)" in captured.err

    def test_json_document_output(self, tmp_path, capsys):
        log = tmp_path / "access.jsonl"
        _write_jsonl(log, ACCESS_RECORDS)
        rc = main(["--access-log", str(log), "--trace-id", "d" * 32, "--json"])
        assert rc == 0
        document = json.loads(capsys.readouterr().out)
        assert [r["request_id"] for r in document["access"]] == ["req-d"]

    def test_upcc_obs_query_subcommand(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        log = tmp_path / "access.jsonl"
        _write_jsonl(log, ACCESS_RECORDS)
        rc = cli_main([
            "obs", "query", "--access-log", str(log),
            "--request-id", "req-b", "--json",
        ])
        assert rc == 0
        document = json.loads(capsys.readouterr().out)
        assert [r["status"] for r in document["access"]] == [400]

    def test_end_to_end_against_a_real_daemon_trail(self, tmp_path, capsys):
        """Round-trip: serve with trace + alert files, then query offline."""
        from repro.serve import ServeApp, ServeConfig, UpccServer
        from tests.test_serve import TRACE_ID, TRACEPARENT, _traced_request

        config = ServeConfig(
            workers=2, queue_size=16,
            access_log=str(tmp_path / "access.jsonl"),
            slow_ms=0.0, slow_dir=str(tmp_path / "slow"),
        )
        with UpccServer(ServeApp(), config) as server:
            status, _, _ = _traced_request(
                server, "GET", "/healthz",
                headers={"traceparent": TRACEPARENT},
            )
            assert status == 200
        rc = main([
            "--access-log", str(tmp_path / "access.jsonl"),
            "--slow-dir", str(tmp_path / "slow"),
            "--trace-id", TRACE_ID, "--json",
        ])
        assert rc == 0
        document = json.loads(capsys.readouterr().out)
        assert document["access"], document
        assert document["access"][0]["trace_id"] == TRACE_ID
        assert document["slow"], document
        assert document["slow"][0]["trace_id"] == TRACE_ID
