"""Unit tests for the generation cache: fingerprints, LRU, disk, parallel."""

import pytest

from repro.catalog.easybiz import build_easybiz_model
from repro.errors import GenerationError
from repro.xsdgen import (
    GenerationCache,
    GenerationOptions,
    SchemaGenerator,
    fingerprint_library,
    library_dependencies,
)


def _schema_texts(result):
    return {urn: generated.to_string() for urn, generated in result.schemas.items()}


class TestFingerprint:
    def test_stable_across_equivalent_models(self):
        first = build_easybiz_model()
        second = build_easybiz_model()
        options = GenerationOptions()
        for library in (first.doc_library, first.model.library_named("coredatatypes")):
            twin = second.model.library_named(library.name)
            assert fingerprint_library(first.model, library, options) == fingerprint_library(
                second.model, twin, options
            )

    def test_root_changes_fingerprint(self, easybiz):
        options = GenerationOptions()
        with_root = fingerprint_library(
            easybiz.model, easybiz.doc_library, options, root_name="HoardingPermit"
        )
        without = fingerprint_library(easybiz.model, easybiz.doc_library, options)
        assert with_root != without

    def test_options_change_fingerprint(self, easybiz):
        plain = fingerprint_library(easybiz.model, easybiz.doc_library, GenerationOptions())
        annotated = fingerprint_library(
            easybiz.model, easybiz.doc_library, GenerationOptions(annotated=True)
        )
        assert plain != annotated

    def test_own_mutation_invalidates(self, easybiz):
        options = GenerationOptions()
        before = fingerprint_library(easybiz.model, easybiz.doc_library, options)
        easybiz.hoarding_permit.element.documentation = "changed"
        after = fingerprint_library(easybiz.model, easybiz.doc_library, options)
        assert before != after

    def test_referenced_classifier_mutation_invalidates(self, easybiz):
        # DOC BBIEs type directly to the CDT 'Text'; editing that CDT must
        # invalidate the DOC fingerprint even though the DOC library's own
        # subtree is untouched.
        options = GenerationOptions()
        before = fingerprint_library(easybiz.model, easybiz.doc_library, options)
        text = easybiz.model.library_named("coredatatypes").cdt("Text")
        text.element.apply_stereotype("CDT", definition="edited")
        after = fingerprint_library(easybiz.model, easybiz.doc_library, options)
        assert before != after

    def test_unrelated_mutation_keeps_unrelated_fingerprint(self, easybiz):
        # Editing the DOC library must not change the ENUM library's print.
        options = GenerationOptions()
        enum_library = easybiz.model.library_named("EnumerationTypes")
        before = fingerprint_library(easybiz.model, enum_library, options)
        easybiz.hoarding_permit.element.documentation = "changed"
        after = fingerprint_library(easybiz.model, enum_library, options)
        assert before == after


class TestLibraryDependencies:
    def test_doc_dependencies_are_schema_capable(self, easybiz):
        deps = library_dependencies(easybiz.model, easybiz.doc_library)
        names = [library.name for library in deps]
        assert "CommonAggregates" in names
        stereotypes = {library.stereotype for library in deps}
        # basedOn reaches CC libraries and CON components reach PRIMs, but
        # neither generates a schema, so neither may appear as an import.
        assert "CCLibrary" not in stereotypes
        assert "PRIMLibrary" not in stereotypes

    def test_leaf_library_has_no_dependencies(self, easybiz):
        enum_library = easybiz.model.library_named("EnumerationTypes")
        assert library_dependencies(easybiz.model, enum_library) == []


class TestGenerationCache:
    def test_round_trip_and_hit(self, easybiz):
        cache = GenerationCache()
        options = GenerationOptions(use_cache=True)
        first = SchemaGenerator(easybiz.model, options, cache=cache).generate(
            easybiz.doc_library, root="HoardingPermit"
        )
        assert len(cache) == len(first.schemas)
        second = SchemaGenerator(easybiz.model, options, cache=cache).generate(
            easybiz.doc_library, root="HoardingPermit"
        )
        assert _schema_texts(second) == _schema_texts(first)
        assert any("Reusing cached schema" in line for line in second.session.messages)

    def test_cached_output_matches_uncached(self, easybiz):
        cache = GenerationCache()
        cached_options = GenerationOptions(use_cache=True)
        SchemaGenerator(easybiz.model, cached_options, cache=cache).generate(
            easybiz.doc_library, root="HoardingPermit"
        )
        warm = SchemaGenerator(easybiz.model, cached_options, cache=cache).generate(
            easybiz.doc_library, root="HoardingPermit"
        )
        cold = SchemaGenerator(easybiz.model).generate(
            easybiz.doc_library, root="HoardingPermit"
        )
        assert _schema_texts(warm) == _schema_texts(cold)

    def test_mutation_misses_instead_of_staleness(self, easybiz):
        cache = GenerationCache()
        options = GenerationOptions(use_cache=True)
        SchemaGenerator(easybiz.model, options, cache=cache).generate(
            easybiz.doc_library, root="HoardingPermit"
        )
        entries_before = set(cache.keys())
        easybiz.hoarding_permit.element.documentation = "now different"
        rerun = SchemaGenerator(easybiz.model, options, cache=cache).generate(
            easybiz.doc_library, root="HoardingPermit"
        )
        # The DOC schema was rebuilt under a new fingerprint; untouched
        # libraries still hit their old entries.
        assert not entries_before.issuperset(cache.keys())
        fresh = SchemaGenerator(easybiz.model).generate(
            easybiz.doc_library, root="HoardingPermit"
        )
        assert _schema_texts(rerun) == _schema_texts(fresh)

    def test_lru_eviction(self, easybiz):
        cache = GenerationCache(max_entries=2)
        options = GenerationOptions(use_cache=True)
        SchemaGenerator(easybiz.model, options, cache=cache).generate(
            easybiz.doc_library, root="HoardingPermit"
        )
        assert len(cache) == 2

    def test_max_entries_validated(self):
        with pytest.raises(ValueError):
            GenerationCache(max_entries=0)


class TestDiskCache:
    def test_round_trip_between_cache_instances(self, easybiz, tmp_path):
        options = GenerationOptions(use_cache=True)
        writer = GenerationCache(cache_dir=tmp_path)
        first = SchemaGenerator(easybiz.model, options, cache=writer).generate(
            easybiz.doc_library, root="HoardingPermit"
        )
        assert list(tmp_path.glob("*.json"))
        # A second cache instance (a new process, in effect) starts with an
        # empty memory layer and loads every schema from disk.
        reader = GenerationCache(cache_dir=tmp_path)
        assert len(reader) == 0
        second = SchemaGenerator(easybiz.model, options, cache=reader).generate(
            easybiz.doc_library, root="HoardingPermit"
        )
        assert _schema_texts(second) == _schema_texts(first)
        assert any("Reusing cached schema" in line for line in second.session.messages)

    def test_corrupt_disk_entry_is_a_miss(self, easybiz, tmp_path):
        options = GenerationOptions(use_cache=True)
        writer = GenerationCache(cache_dir=tmp_path)
        first = SchemaGenerator(easybiz.model, options, cache=writer).generate(
            easybiz.doc_library, root="HoardingPermit"
        )
        for path in tmp_path.glob("*.json"):
            path.write_text("not json", encoding="utf-8")
        reader = GenerationCache(cache_dir=tmp_path)
        second = SchemaGenerator(easybiz.model, options, cache=reader).generate(
            easybiz.doc_library, root="HoardingPermit"
        )
        assert _schema_texts(second) == _schema_texts(first)

    def test_cache_dir_option_selects_disk_cache(self, easybiz, tmp_path):
        options = GenerationOptions(cache_dir=tmp_path / "cache")
        generator = SchemaGenerator(easybiz.model, options)
        generator.generate(easybiz.doc_library, root="HoardingPermit")
        assert list((tmp_path / "cache").glob("*.json"))

    def test_adopt_fails_when_dependency_vanishes(self, easybiz):
        # A cached entry naming a dependency the model no longer has is a
        # hard error, not a silent partial result.
        from dataclasses import replace

        options = GenerationOptions(use_cache=True)
        seed = GenerationCache()
        SchemaGenerator(easybiz.model, options, cache=seed).generate(
            easybiz.doc_library, root="HoardingPermit"
        )
        doctored = GenerationCache()
        for key in seed.keys():
            entry = seed.get(key)
            if entry.stereotype == "DOCLibrary":
                entry = replace(entry, dependencies=("NoSuchLibrary",))
            doctored.put(entry)
        with pytest.raises(GenerationError):
            SchemaGenerator(easybiz.model, options, cache=doctored).generate(
                easybiz.doc_library, root="HoardingPermit"
            )


class TestParallelGeneration:
    def test_parallel_output_matches_serial(self, easybiz):
        serial = SchemaGenerator(easybiz.model).generate(
            easybiz.doc_library, root="HoardingPermit"
        )
        parallel = SchemaGenerator(easybiz.model, GenerationOptions(jobs=4)).generate(
            easybiz.doc_library, root="HoardingPermit"
        )
        assert _schema_texts(parallel) == _schema_texts(serial)

    def test_parallel_with_cache(self, easybiz):
        cache = GenerationCache()
        options = GenerationOptions(jobs=4, use_cache=True)
        first = SchemaGenerator(easybiz.model, options, cache=cache).generate(
            easybiz.doc_library, root="HoardingPermit"
        )
        second = SchemaGenerator(easybiz.model, options, cache=cache).generate(
            easybiz.doc_library, root="HoardingPermit"
        )
        assert _schema_texts(second) == _schema_texts(first)

    def test_parallel_cyclic_libraries(self):
        # Reuse the cyclic two-BIE-library construction; the SCC condensation
        # must keep the cycle on one thread and match the serial output.
        from repro.ccts.derivation import derive_abie
        from repro.ccts.model import CctsModel

        def build():
            model = CctsModel("Cyclic")
            business = model.add_business_library("B", "urn:cyc")
            prims = business.add_prim_library("P")
            string = prims.add_primitive("String")
            cdts = business.add_cdt_library("D")
            text = cdts.add_cdt("Text")
            text.set_content(string.element)
            ccs = business.add_cc_library("C")
            a_acc = ccs.add_acc("A")
            a_acc.add_bcc("Name", text, "0..1")
            b_acc = ccs.add_acc("B")
            b_acc.add_bcc("Name", text, "0..1")
            a_acc.add_ascc("Linked", b_acc, "0..1")
            b_acc.add_ascc("Back", a_acc, "0..1")
            lib1 = business.add_bie_library("L1")
            lib2 = business.add_bie_library("L2")
            a = derive_abie(lib1, a_acc)
            a.include("Name", "0..1")
            b = derive_abie(lib2, b_acc)
            b.include("Name", "0..1")
            a.connect("Linked", b.abie, "0..1", based_on="Linked")
            b.connect("Back", a.abie, "0..1", based_on="Back")
            return model, lib1

        model, lib1 = build()
        serial = SchemaGenerator(model).generate(lib1)
        model2, lib1_again = build()
        parallel = SchemaGenerator(model2, GenerationOptions(jobs=3)).generate(lib1_again)
        assert _schema_texts(parallel) == _schema_texts(serial)
