"""Golden-file tests: generation output is byte-stable across runs.

The figure benchmarks assert structure; these tests pin the *exact bytes*
of every generated EasyBiz schema (and a sample instance) so any
unintentional change to naming, ordering, prefixes or formatting shows up
as a diff against the checked-in goldens.
"""

from pathlib import Path

import pytest

GOLDEN_DIR = Path(__file__).parent / "golden"

#: namespace URN -> golden file name.
GOLDEN_SCHEMAS = {
    "urn:au:gov:vic:easybiz:data:draft:EB005-HoardingPermit": "fig6_doc_library.xsd",
    "urn:au:gov:vic:easybiz:data:draft:CommonAggregates": "fig7_common_aggregates.xsd",
    "urn:au:gov:vic:easybiz:types:draft:coredatatypes": "fig8_cdt_library.xsd",
    "urn:au:gov:vic:easybiz:types:draft:CommonDataTypes": "qdt_library.xsd",
    "urn:au:gov:vic:easybiz:types:draft:EnumerationTypes": "enum_library.xsd",
    "urn:au:gov:vic:easybiz:data:draft:LocalLawAggregates": "local_law.xsd",
}


@pytest.mark.parametrize("urn,filename", sorted(GOLDEN_SCHEMAS.items()))
def test_schema_matches_golden(easybiz_result, urn, filename):
    expected = (GOLDEN_DIR / filename).read_text(encoding="utf-8")
    assert easybiz_result.schemas[urn].to_string() == expected


def test_sample_instance_matches_golden(easybiz_schema_set):
    from repro.instances import InstanceGenerator

    expected = (GOLDEN_DIR / "hoarding_permit_instance.xml").read_text(encoding="utf-8")
    generated = InstanceGenerator(easybiz_schema_set).generate_string("HoardingPermit")
    assert generated == expected


def test_goldens_are_valid_schemas():
    from repro.xsd.parser import parse_schema
    from repro.xsd.writer import schema_to_string

    for filename in GOLDEN_SCHEMAS.values():
        text = (GOLDEN_DIR / filename).read_text(encoding="utf-8")
        assert schema_to_string(parse_schema(text)) == text


def test_golden_instance_validates_against_golden_schemas():
    from repro.xsd.validator import SchemaSet, validate_instance

    schema_set = SchemaSet.from_files(
        [GOLDEN_DIR / filename for filename in GOLDEN_SCHEMAS.values()]
    )
    instance = (GOLDEN_DIR / "hoarding_permit_instance.xml").read_text(encoding="utf-8")
    assert validate_instance(schema_set, instance) == []
