"""SLO burn-rate engine: window math, transitions, alert ring, spec files."""

from __future__ import annotations

import json

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import (
    Alert,
    AlertLog,
    DEFAULT_SLOS,
    SloEngine,
    SloSpec,
    load_slo_specs,
)


class FakeClock:
    def __init__(self, start: float = 1000.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> float:
        self.now += seconds
        return self.now


AVAILABILITY = SloSpec(
    name="avail",
    objective=0.99,  # error budget 0.01
    kind="availability",
    error_classes=("5xx",),
    fast_window_s=60.0,
    slow_window_s=600.0,
    burn_threshold=10.0,
)


def responses(registry: MetricsRegistry, code: int, n: int) -> None:
    registry.counter("serve.responses_total", code=code).inc(n)


@pytest.fixture
def registry():
    return MetricsRegistry()


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def engine(registry, clock):
    return SloEngine([AVAILABILITY], registry=registry, clock=clock)


class TestSpecValidation:
    def test_objective_bounds(self):
        with pytest.raises(ValueError, match="objective"):
            SloSpec(name="x", objective=1.5)

    def test_latency_needs_threshold(self):
        with pytest.raises(ValueError, match="threshold_ms"):
            SloSpec(name="x", objective=0.99, kind="latency")

    def test_window_ordering(self):
        with pytest.raises(ValueError, match="window"):
            SloSpec(name="x", objective=0.99, fast_window_s=600.0, slow_window_s=60.0)

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="kind"):
            SloSpec(name="x", objective=0.99, kind="throughput")

    def test_error_budget(self):
        assert SloSpec(name="x", objective=0.995).error_budget == pytest.approx(0.005)


class TestBurnRateMath:
    """Hand-computed windows: budget 0.01, threshold 10, fast 60s / slow 600s."""

    def test_error_burst_computes_expected_burn(self, engine, registry, clock):
        engine.tick()  # t=1000: all-zero baseline
        # 100 requests in the next minute, 5 of them 5xx:
        responses(registry, 200, 95)
        responses(registry, 500, 5)
        clock.advance(60.0)
        [status] = engine.tick()  # t=1060
        # fast window (60s): 5 errors / 100 total = 0.05 rate; /0.01 = burn 5.0
        assert status.burn_fast == pytest.approx(5.0)
        # slow window covers the same single minute of traffic:
        assert status.burn_slow == pytest.approx(5.0)
        assert status.window_total == 100
        assert status.window_errors == 5
        # 5.0 <= threshold 10 in the fast window -> still ok
        assert status.state == "ok"
        # slow-window budget consumed = burn 5.0 -> remaining clamps at 0
        assert status.budget_remaining == 0.0

    def test_burn_of_exactly_one_leaves_no_remaining_budget(self, engine, registry, clock):
        engine.tick()
        responses(registry, 200, 999)
        responses(registry, 500, 1)  # error rate 0.001 = budget/10
        clock.advance(60.0)
        [status] = engine.tick()
        assert status.burn_fast == pytest.approx(0.1)
        assert status.budget_remaining == pytest.approx(0.9)

    def test_old_errors_age_out_of_the_fast_window(self, engine, registry, clock):
        engine.tick()
        responses(registry, 500, 50)
        responses(registry, 200, 50)
        clock.advance(60.0)
        engine.tick()  # burst inside fast window
        # Nine clean minutes push the burst past the fast window edge
        # while keeping it inside the slow one:
        for _ in range(9):
            responses(registry, 200, 100)
            clock.advance(60.0)
            engine.tick()
        [status] = engine.evaluate()
        # fast window (60s) saw only the last 100 clean requests:
        assert status.burn_fast == 0.0
        # slow window (600s) still remembers the burst: 50 errors in the
        # 1000 requests since its t=1000 baseline = rate 0.05, burn 5.0.
        assert status.burn_slow == pytest.approx(5.0)

    def test_no_traffic_means_no_burn(self, engine, clock):
        engine.tick()
        clock.advance(60.0)
        [status] = engine.tick()
        assert status.state == "ok"
        assert status.burn_fast == 0.0 and status.burn_slow == 0.0
        assert status.budget_remaining == 1.0


class TestTransitions:
    def test_burst_fires_then_steady_traffic_resolves(self, engine, registry, clock):
        engine.tick()
        # 20% errors: rate 0.2 / budget 0.01 = burn 20 > threshold 10 in
        # both windows -> firing.
        responses(registry, 200, 80)
        responses(registry, 500, 20)
        clock.advance(60.0)
        [status] = engine.tick()
        assert status.state == "firing"
        alerts = engine.alert_log.recent()
        assert len(alerts) == 1
        assert alerts[0].state == "firing" and alerts[0].slo == "avail"
        assert alerts[0].burn_fast == pytest.approx(20.0)

        # Clean traffic ages the burst out of the fast window -> resolved.
        for _ in range(3):
            responses(registry, 200, 200)
            clock.advance(60.0)
            engine.tick()
        [status] = engine.evaluate()
        assert status.state == "ok"
        states = [alert.state for alert in engine.alert_log.recent()]
        assert states == ["firing", "resolved"]

    def test_no_duplicate_alerts_while_state_is_stable(self, engine, registry, clock):
        engine.tick()
        responses(registry, 500, 100)
        clock.advance(30.0)
        engine.tick()
        clock.advance(30.0)
        engine.tick()  # still firing; no second "firing" record
        assert [a.state for a in engine.alert_log.recent()] == ["firing"]

    def test_fast_blip_alone_does_not_fire(self, registry, clock):
        # Slow window must ALSO exceed the threshold.  Pre-load ten clean
        # minutes so the burst is diluted in the slow window.
        engine = SloEngine([AVAILABILITY], registry=registry, clock=clock)
        engine.tick()
        for _ in range(10):
            responses(registry, 200, 1000)
            clock.advance(60.0)
            engine.tick()
        responses(registry, 500, 30)
        responses(registry, 200, 70)
        clock.advance(60.0)
        [status] = engine.tick()
        # fast: 30/100 = burn 30 > 10.  The slow window's baseline is the
        # t=1060 sample (first clean minute already recorded), so it spans
        # 9100 requests: 30/9100 = rate 0.0033, burn 0.33 < 10 -> ok.
        assert status.burn_fast == pytest.approx(30.0)
        assert status.burn_slow == pytest.approx(30 / 9100 / 0.01)
        assert status.state == "ok"


class TestLatencySlo:
    SPEC = SloSpec(
        name="latency",
        objective=0.9,  # budget 0.1
        kind="latency",
        threshold_ms=1.0,
        fast_window_s=60.0,
        slow_window_s=600.0,
        burn_threshold=2.5,
    )

    def test_over_threshold_observations_burn_budget(self, registry, clock):
        engine = SloEngine([self.SPEC], registry=registry, clock=clock)
        engine.tick()
        hist = registry.histogram("serve.request_ms", endpoint="validate")
        for _ in range(8):
            hist.observe(0.5)  # good: <= 1ms bound
        for _ in range(2):
            hist.observe(50.0)  # bad
        clock.advance(60.0)
        [status] = engine.tick()
        # 2 slow of 10 = rate 0.2 / budget 0.1 = burn 2.0 < threshold 2.5
        assert status.burn_fast == pytest.approx(2.0)
        assert status.state == "ok"
        hist.observe(300.0)  # 3 of 11 slow: rate 0.27, burn 2.7 > 2.5
        clock.advance(30.0)
        [status] = engine.tick()
        assert status.state == "firing"

    def test_threshold_snaps_to_bucket_bound(self, registry, clock):
        spec = SloSpec(
            name="latency", objective=0.9, kind="latency",
            threshold_ms=0.7,  # between the 0.5 and 1.0 bounds -> snaps to 1.0
            fast_window_s=60.0, slow_window_s=600.0, burn_threshold=2.0,
        )
        engine = SloEngine([spec], registry=registry, clock=clock)
        engine.tick()
        hist = registry.histogram("serve.request_ms")
        hist.observe(0.9)  # within the snapped bound -> good
        clock.advance(60.0)
        [status] = engine.tick()
        assert status.window_errors == 0


class TestErrorClasses:
    def test_4xx_class_and_exact_codes(self, registry, clock):
        spec = SloSpec(
            name="client-errors", objective=0.99,
            error_classes=("4xx", "503"),
            fast_window_s=60.0, slow_window_s=600.0, burn_threshold=1.0,
        )
        engine = SloEngine([spec], registry=registry, clock=clock)
        engine.tick()
        responses(registry, 200, 6)
        responses(registry, 400, 1)
        responses(registry, 404, 1)
        responses(registry, 503, 1)
        responses(registry, 500, 1)  # not selected
        clock.advance(60.0)
        [status] = engine.tick()
        assert status.window_total == 10
        assert status.window_errors == 3


class TestAlertLog:
    def _alert(self, ts: float, state: str = "firing") -> Alert:
        return Alert(
            ts=ts, slo="avail", state=state, burn_fast=20.0, burn_slow=15.0,
            budget_remaining=0.0, window_total=100, window_errors=20,
        )

    def test_ring_is_bounded(self):
        log = AlertLog(keep=3)
        for i in range(10):
            log.append(self._alert(float(i)))
        assert [a.ts for a in log.recent()] == [7.0, 8.0, 9.0]
        assert [a.ts for a in log.recent(limit=2)] == [8.0, 9.0]

    def test_jsonl_file_round_trips(self, tmp_path):
        path = str(tmp_path / "alerts.jsonl")
        log = AlertLog(path=path, keep=8)
        log.append(self._alert(1.0))
        log.append(self._alert(2.0, state="resolved"))
        records = [json.loads(line) for line in open(path, encoding="utf-8")]
        assert [Alert.from_dict(r).state for r in records] == ["firing", "resolved"]

    def test_file_is_compacted_past_twice_keep(self, tmp_path):
        path = str(tmp_path / "alerts.jsonl")
        log = AlertLog(path=path, keep=4)
        for i in range(20):
            log.append(self._alert(float(i)))
        lines = open(path, encoding="utf-8").read().splitlines()
        assert len(lines) <= 2 * 4 + 1
        # The newest alerts are always present:
        assert json.loads(lines[-1])["ts"] == 19.0

    def test_append_survives_file_write_failure(self, tmp_path, monkeypatch):
        # The engine tick runs on the runtime collector thread; a disk
        # blip on the JSONL write must neither raise (which would count
        # against the hook-failure limit) nor lose the in-memory alert.
        log = AlertLog(path=str(tmp_path / "alerts.jsonl"), keep=4)

        def boom(*args, **kwargs):
            raise OSError("disk full")

        monkeypatch.setattr("builtins.open", boom)
        log.append(self._alert(1.0))
        monkeypatch.undo()
        assert [a.ts for a in log.recent()] == [1.0]
        # Later appends with a healthy disk keep working:
        log.append(self._alert(2.0))
        assert [a.ts for a in log.recent()] == [1.0, 2.0]


class TestWindowCapacity:
    def test_capacity_covers_slow_window_at_cadence(self):
        from repro.obs.slo import _window_capacity

        assert _window_capacity(3600.0, 0.05) == 72008
        # Slow cadences keep the historical floor:
        assert _window_capacity(600.0, 5.0) == 4096
        # The cap bounds memory for absurd window/cadence combinations:
        assert _window_capacity(1e6, 0.05) == 90_000

    def test_engine_sizes_rings_from_sample_interval(self, registry, clock):
        engine = SloEngine(
            [AVAILABILITY], registry=registry, clock=clock,
            sample_interval_s=0.05,
        )
        ring = engine._windows["avail"].samples
        # 600s slow window at 0.05s cadence needs 12000 snapshots; the
        # old fixed 4096 ring silently shortened the slow window.
        assert ring.maxlen is not None
        assert ring.maxlen * 0.05 >= AVAILABILITY.slow_window_s


class TestSpecFiles:
    def test_load_round_trip(self, tmp_path):
        path = tmp_path / "slo.json"
        path.write_text(json.dumps({"slos": [
            {"name": "avail", "objective": 0.999, "kind": "availability",
             "error_classes": ["5xx"], "fast_window_s": 120,
             "slow_window_s": 3600, "burn_threshold": 6},
            {"name": "lat", "objective": 0.95, "kind": "latency",
             "threshold_ms": 250},
        ]}))
        specs = load_slo_specs(str(path))
        assert [s.name for s in specs] == ["avail", "lat"]
        assert specs[0].error_budget == pytest.approx(0.001)
        assert specs[1].threshold_ms == 250

    def test_unknown_fields_rejected(self, tmp_path):
        path = tmp_path / "slo.json"
        path.write_text(json.dumps({"slos": [
            {"name": "a", "objective": 0.99, "fastwindow": 5},
        ]}))
        with pytest.raises(ValueError, match="unknown fields"):
            load_slo_specs(str(path))

    def test_duplicate_names_rejected(self, tmp_path):
        path = tmp_path / "slo.json"
        path.write_text(json.dumps({"slos": [
            {"name": "a", "objective": 0.99},
            {"name": "a", "objective": 0.9},
        ]}))
        with pytest.raises(ValueError, match="duplicate"):
            load_slo_specs(str(path))

    def test_empty_list_rejected(self, tmp_path):
        path = tmp_path / "slo.json"
        path.write_text(json.dumps({"slos": []}))
        with pytest.raises(ValueError, match="empty"):
            load_slo_specs(str(path))


class TestEngineReporting:
    def test_to_dict_shape(self, engine, registry, clock):
        engine.tick()
        payload = engine.to_dict()
        assert set(payload) == {"slos", "statuses", "alerts"}
        assert payload["slos"][0]["name"] == "avail"
        assert payload["statuses"][0]["state"] == "ok"
        json.dumps(payload)  # JSON-ready end to end

    def test_default_slos_construct(self):
        engine = SloEngine(DEFAULT_SLOS, registry=MetricsRegistry())
        assert {s.name for s in engine.specs} == {
            "availability-5xx", "latency-p99-1s",
        }
