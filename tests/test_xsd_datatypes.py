"""Unit tests for built-in type lexical checks and facet validation."""

import pytest

from repro.xmlutil.qname import QName
from repro.xsd.components import XSD_NS, Facet
from repro.xsd.datatypes import (
    check_builtin,
    check_facets,
    compile_facets,
    is_builtin,
    measured_length,
    normalize_whitespace,
)


def _q(local: str) -> QName:
    return QName(XSD_NS, local)


class TestBuiltinChecks:
    @pytest.mark.parametrize(
        "local,value",
        [
            ("string", "anything at all\neven newlines"),
            ("token", "a b c"),
            ("boolean", "true"),
            ("boolean", "0"),
            ("integer", "-42"),
            ("nonNegativeInteger", "0"),
            ("positiveInteger", "1"),
            ("int", "2147483647"),
            ("byte", "-128"),
            ("unsignedByte", "255"),
            ("decimal", "3.14"),
            ("decimal", ".5"),
            ("float", "1e10"),
            ("double", "-INF"),
            ("double", "NaN"),
            ("date", "2007-04-15"),
            ("date", "2007-04-15Z"),
            ("date", "2007-04-15+02:00"),
            ("time", "10:30:00"),
            ("dateTime", "2007-04-15T10:30:00Z"),
            ("dateTime", "2007-04-15T10:30:00.123+01:00"),
            ("duration", "P1Y2M3DT4H5M6S"),
            ("duration", "PT5S"),
            ("gYear", "2007"),
            ("gYearMonth", "2007-04"),
            ("base64Binary", "U2FtcGxl"),
            ("base64Binary", ""),
            ("hexBinary", "53616d"),
            ("anyURI", "urn:example:x"),
            ("anyURI", "  urn:example:x  "),
            ("language", "en-US"),
            ("NCName", "valid_name"),
        ],
    )
    def test_valid_values(self, local, value):
        assert check_builtin(_q(local), value), f"{value!r} should be a valid {local}"

    @pytest.mark.parametrize(
        "local,value",
        [
            ("boolean", "yes"),
            ("integer", "4.5"),
            ("integer", "x"),
            ("positiveInteger", "0"),
            ("byte", "128"),
            ("unsignedByte", "-1"),
            ("decimal", "1e5"),
            ("date", "2007-13-01"),
            ("date", "2007-04-32"),
            ("date", "April 15"),
            ("time", "25:00"),
            ("dateTime", "2007-04-15 10:30:00"),
            ("dateTime", "2007-15-15T10:30:00"),
            ("duration", "P"),
            ("gYear", "07"),
            ("base64Binary", "@@@@"),
            ("base64Binary", "QUJ"),
            ("hexBinary", "5"),
            ("anyURI", "has space"),
            ("anyURI", "has\ttab"),
            ("anyURI", "has\nnewline"),
            ("anyURI", "has\rreturn"),
            ("language", "waytoolongprimarytag"),
            ("NCName", "1leading"),
        ],
    )
    def test_invalid_values(self, local, value):
        assert not check_builtin(_q(local), value), f"{value!r} should be an invalid {local}"

    def test_non_xsd_namespace_rejected(self):
        assert not check_builtin(QName("urn:x", "string"), "x")

    def test_unknown_builtin_is_permissive(self):
        assert check_builtin(_q("QName"), "whatever")

    def test_is_builtin(self):
        assert is_builtin(_q("string"))
        assert not is_builtin(_q("madeUp"))
        assert not is_builtin(QName("urn:x", "string"))


class TestWhitespace:
    def test_string_preserved(self):
        assert normalize_whitespace(_q("string"), " a\n b ") == " a\n b "

    def test_token_collapsed(self):
        assert normalize_whitespace(_q("token"), "  a\n b  ") == "a b"

    def test_normalized_string_replaces(self):
        assert normalize_whitespace(_q("normalizedString"), "a\nb") == "a b"

    def test_collapse_makes_numbers_valid(self):
        assert check_builtin(_q("integer"), "  42 ")


class TestFacets:
    def test_enumeration_disjunction(self):
        facets = [Facet("enumeration", "A"), Facet("enumeration", "B")]
        assert check_facets(facets, "B", _q("token")) == []
        problems = check_facets(facets, "C", _q("token"))
        assert problems and "enumerated" in problems[0]

    def test_pattern(self):
        facets = [Facet("pattern", "[A-Z]{3}")]
        assert check_facets(facets, "USD", _q("token")) == []
        assert check_facets(facets, "usd", _q("token"))

    def test_lengths(self):
        assert check_facets([Facet("length", "3")], "abc", _q("string")) == []
        assert check_facets([Facet("length", "3")], "ab", _q("string"))
        assert check_facets([Facet("minLength", "2")], "a", _q("string"))
        assert check_facets([Facet("maxLength", "2")], "abc", _q("string"))

    def test_numeric_ranges(self):
        assert check_facets([Facet("minInclusive", "0")], "0", _q("integer")) == []
        assert check_facets([Facet("minInclusive", "0")], "-1", _q("integer"))
        assert check_facets([Facet("maxInclusive", "10")], "11", _q("integer"))
        assert check_facets([Facet("minExclusive", "0")], "0", _q("integer"))
        assert check_facets([Facet("maxExclusive", "10")], "10", _q("integer"))
        assert check_facets([Facet("maxExclusive", "10")], "9.5", _q("decimal")) == []

    def test_digit_facets(self):
        assert check_facets([Facet("totalDigits", "3")], "1234", _q("integer"))
        assert check_facets([Facet("totalDigits", "4")], "1234", _q("integer")) == []
        assert check_facets([Facet("fractionDigits", "2")], "1.234", _q("decimal"))
        assert check_facets([Facet("fractionDigits", "3")], "1.234", _q("decimal")) == []

    def test_range_facet_on_garbage_value(self):
        problems = check_facets([Facet("minInclusive", "0")], "abc", _q("integer"))
        assert problems


class TestCalendarLexicals:
    """Regression tests: impossible dates and clock fields must be rejected."""

    @pytest.mark.parametrize(
        "local,value",
        [
            ("date", "2024-02-29"),  # leap year
            ("date", "2000-02-29"),  # divisible by 400: leap
            ("date", "2024-04-30"),
            ("date", "2024-12-31"),
            ("date", "-0001-01-01"),  # proleptic negative year
            ("date", "20024-02-29"),  # five-digit leap year
            ("date", "2024-02-29+14:00"),  # maximum timezone offset
            ("time", "00:00:00"),
            ("time", "23:59:59"),
            ("time", "24:00:00"),  # XSD end-of-day
            ("time", "24:00:00.000"),
            ("time", "10:30:00-14:00"),
            ("dateTime", "2024-02-29T23:59:59Z"),
            ("gYearMonth", "2024-12"),
        ],
    )
    def test_valid_calendar_values(self, local, value):
        assert check_builtin(_q(local), value), f"{value!r} should be a valid {local}"

    @pytest.mark.parametrize(
        "local,value",
        [
            ("date", "2024-02-31"),  # February never has 31 days
            ("date", "2023-02-29"),  # not a leap year
            ("date", "2100-02-29"),  # divisible by 100, not 400: not leap
            ("date", "2024-04-31"),  # April has 30 days
            ("date", "2024-06-31"),
            ("date", "0000-01-01"),  # year zero prohibited in XSD 1.0
            ("date", "-0000-01-01"),
            ("date", "-0001-02-29"),  # -1 is not a leap year proleptically
            ("date", "2024-01-01+15:00"),  # offset beyond +-14:00
            ("date", "2024-01-01+14:30"),
            ("time", "29:99:99"),  # the _TIME_RE bug: all fields out of range
            ("time", "24:00:01"),  # only exactly 24:00:00 is allowed
            ("time", "24:30:00"),
            ("time", "24:00:00.5"),
            ("time", "10:60:00"),
            ("time", "10:30:60"),
            ("dateTime", "2023-02-29T10:00:00"),
            ("dateTime", "2024-01-01T25:00:00"),
            ("gYear", "0000"),
            ("gYearMonth", "2007-13"),  # month out of range
            ("gYearMonth", "0000-01"),
        ],
    )
    def test_invalid_calendar_values(self, local, value):
        assert not check_builtin(_q(local), value), f"{value!r} should be an invalid {local}"


class TestExactRangeFacets:
    """Regression tests: range facets must not round through float."""

    def test_long_boundary_exact(self):
        # 2**63 rounds to the same float as 2**63 - 1, so the old
        # float-based comparison let it slip past maxInclusive.
        facets = [Facet("maxInclusive", "9223372036854775807")]
        assert check_facets(facets, "9223372036854775807", _q("integer")) == []
        assert check_facets(facets, "9223372036854775808", _q("integer"))

    def test_long_lower_boundary_exact(self):
        facets = [Facet("minInclusive", "-9223372036854775808")]
        assert check_facets(facets, "-9223372036854775808", _q("integer")) == []
        assert check_facets(facets, "-9223372036854775809", _q("integer"))

    def test_unsigned_long_boundary_exact(self):
        facets = [Facet("maxInclusive", "18446744073709551615")]
        assert check_facets(facets, "18446744073709551615", _q("integer")) == []
        assert check_facets(facets, "18446744073709551616", _q("integer"))

    def test_high_precision_decimal(self):
        facets = [Facet("maxInclusive", "1.00000000000000000001")]
        assert check_facets(facets, "1.00000000000000000001", _q("decimal")) == []
        assert check_facets(facets, "1.00000000000000000002", _q("decimal"))

    def test_exclusive_boundaries_exact(self):
        facets = [Facet("maxExclusive", "9223372036854775808")]
        assert check_facets(facets, "9223372036854775807", _q("integer")) == []
        assert check_facets(facets, "9223372036854775808", _q("integer"))

    def test_float_specials_keep_ordering(self):
        facets = [Facet("maxInclusive", "100")]
        assert check_facets(facets, "INF", _q("double"))
        assert check_facets(facets, "-INF", _q("double")) == []
        # NaN is incomparable: range facets neither hold nor fail.
        assert check_facets(facets, "NaN", _q("double")) == []


class TestBinaryLengths:
    """Regression tests: binary length facets measure decoded octets."""

    def test_measured_length_hex(self):
        assert measured_length("53616d", _q("hexBinary")) == 3

    def test_measured_length_base64(self):
        assert measured_length("U2FtcGxl", _q("base64Binary")) == 6  # "Sample"
        assert measured_length("U28=", _q("base64Binary")) == 2  # one pad char
        assert measured_length("Uw==", _q("base64Binary")) == 1  # two pad chars
        assert measured_length("U2Ft cGxl", _q("base64Binary")) == 6  # whitespace

    def test_measured_length_string_unchanged(self):
        assert measured_length("53616d", _q("string")) == 6

    def test_hex_length_facet_in_octets(self):
        facets = [Facet("length", "3")]
        assert check_facets(facets, "53616d", _q("hexBinary")) == []
        assert check_facets(facets, "5361", _q("hexBinary"))

    def test_base64_length_facets_in_octets(self):
        assert check_facets([Facet("length", "6")], "U2FtcGxl", _q("base64Binary")) == []
        assert check_facets([Facet("minLength", "2")], "Uw==", _q("base64Binary"))
        assert check_facets([Facet("maxLength", "2")], "U2FtcGxl", _q("base64Binary"))
        assert check_facets([Facet("maxLength", "6")], "U2FtcGxl", _q("base64Binary")) == []

    def test_length_message_reports_octets(self):
        problems = check_facets([Facet("length", "4")], "53616d", _q("hexBinary"))
        assert problems == ["value '53616d' length 3 != 4"]


class TestCompiledFacets:
    """compile_facets must agree with check_facets byte-for-byte."""

    CASES = [
        ([Facet("enumeration", "A"), Facet("enumeration", "B")], _q("token"), ["A", "C", ""]),
        ([Facet("pattern", "[A-Z]{3}")], _q("token"), ["USD", "usd", "USDX"]),
        ([Facet("length", "3"), Facet("pattern", "[a-z]+")], _q("string"), ["abc", "ab", "ABC"]),
        ([Facet("minInclusive", "0"), Facet("maxInclusive", "10")], _q("integer"),
         ["-1", "0", "5", "10", "11", "abc"]),
        ([Facet("totalDigits", "3"), Facet("fractionDigits", "1")], _q("decimal"),
         ["1.2", "12.34", "1234"]),
        ([Facet("length", "3")], _q("hexBinary"), ["53616d", "5361"]),
        ([Facet("maxInclusive", "9223372036854775807")], _q("integer"),
         ["9223372036854775807", "9223372036854775808"]),
    ]

    @pytest.mark.parametrize("facets,base,values", CASES)
    def test_equivalent_to_check_facets(self, facets, base, values):
        compiled = compile_facets(facets, base)
        for value in values:
            assert compiled(value) == check_facets(facets, value, base)

    def test_checker_is_reusable(self):
        compiled = compile_facets([Facet("pattern", r"\d+")], _q("token"))
        assert compiled("123") == []
        assert compiled("abc") != []
        assert compiled("456") == []
