"""Unit tests for built-in type lexical checks and facet validation."""

import pytest

from repro.xmlutil.qname import QName
from repro.xsd.components import XSD_NS, Facet
from repro.xsd.datatypes import (
    check_builtin,
    check_facets,
    is_builtin,
    normalize_whitespace,
)


def _q(local: str) -> QName:
    return QName(XSD_NS, local)


class TestBuiltinChecks:
    @pytest.mark.parametrize(
        "local,value",
        [
            ("string", "anything at all\neven newlines"),
            ("token", "a b c"),
            ("boolean", "true"),
            ("boolean", "0"),
            ("integer", "-42"),
            ("nonNegativeInteger", "0"),
            ("positiveInteger", "1"),
            ("int", "2147483647"),
            ("byte", "-128"),
            ("unsignedByte", "255"),
            ("decimal", "3.14"),
            ("decimal", ".5"),
            ("float", "1e10"),
            ("double", "-INF"),
            ("double", "NaN"),
            ("date", "2007-04-15"),
            ("date", "2007-04-15Z"),
            ("date", "2007-04-15+02:00"),
            ("time", "10:30:00"),
            ("dateTime", "2007-04-15T10:30:00Z"),
            ("dateTime", "2007-04-15T10:30:00.123+01:00"),
            ("duration", "P1Y2M3DT4H5M6S"),
            ("duration", "PT5S"),
            ("gYear", "2007"),
            ("gYearMonth", "2007-04"),
            ("base64Binary", "U2FtcGxl"),
            ("base64Binary", ""),
            ("hexBinary", "53616d"),
            ("anyURI", "urn:example:x"),
            ("language", "en-US"),
            ("NCName", "valid_name"),
        ],
    )
    def test_valid_values(self, local, value):
        assert check_builtin(_q(local), value), f"{value!r} should be a valid {local}"

    @pytest.mark.parametrize(
        "local,value",
        [
            ("boolean", "yes"),
            ("integer", "4.5"),
            ("integer", "x"),
            ("positiveInteger", "0"),
            ("byte", "128"),
            ("unsignedByte", "-1"),
            ("decimal", "1e5"),
            ("date", "2007-13-01"),
            ("date", "2007-04-32"),
            ("date", "April 15"),
            ("time", "25:00"),
            ("dateTime", "2007-04-15 10:30:00"),
            ("dateTime", "2007-15-15T10:30:00"),
            ("duration", "P"),
            ("gYear", "07"),
            ("base64Binary", "@@@@"),
            ("base64Binary", "QUJ"),
            ("hexBinary", "5"),
            ("anyURI", "has space"),
            ("language", "waytoolongprimarytag"),
            ("NCName", "1leading"),
        ],
    )
    def test_invalid_values(self, local, value):
        assert not check_builtin(_q(local), value), f"{value!r} should be an invalid {local}"

    def test_non_xsd_namespace_rejected(self):
        assert not check_builtin(QName("urn:x", "string"), "x")

    def test_unknown_builtin_is_permissive(self):
        assert check_builtin(_q("QName"), "whatever")

    def test_is_builtin(self):
        assert is_builtin(_q("string"))
        assert not is_builtin(_q("madeUp"))
        assert not is_builtin(QName("urn:x", "string"))


class TestWhitespace:
    def test_string_preserved(self):
        assert normalize_whitespace(_q("string"), " a\n b ") == " a\n b "

    def test_token_collapsed(self):
        assert normalize_whitespace(_q("token"), "  a\n b  ") == "a b"

    def test_normalized_string_replaces(self):
        assert normalize_whitespace(_q("normalizedString"), "a\nb") == "a b"

    def test_collapse_makes_numbers_valid(self):
        assert check_builtin(_q("integer"), "  42 ")


class TestFacets:
    def test_enumeration_disjunction(self):
        facets = [Facet("enumeration", "A"), Facet("enumeration", "B")]
        assert check_facets(facets, "B", _q("token")) == []
        problems = check_facets(facets, "C", _q("token"))
        assert problems and "enumerated" in problems[0]

    def test_pattern(self):
        facets = [Facet("pattern", "[A-Z]{3}")]
        assert check_facets(facets, "USD", _q("token")) == []
        assert check_facets(facets, "usd", _q("token"))

    def test_lengths(self):
        assert check_facets([Facet("length", "3")], "abc", _q("string")) == []
        assert check_facets([Facet("length", "3")], "ab", _q("string"))
        assert check_facets([Facet("minLength", "2")], "a", _q("string"))
        assert check_facets([Facet("maxLength", "2")], "abc", _q("string"))

    def test_numeric_ranges(self):
        assert check_facets([Facet("minInclusive", "0")], "0", _q("integer")) == []
        assert check_facets([Facet("minInclusive", "0")], "-1", _q("integer"))
        assert check_facets([Facet("maxInclusive", "10")], "11", _q("integer"))
        assert check_facets([Facet("minExclusive", "0")], "0", _q("integer"))
        assert check_facets([Facet("maxExclusive", "10")], "10", _q("integer"))
        assert check_facets([Facet("maxExclusive", "10")], "9.5", _q("decimal")) == []

    def test_digit_facets(self):
        assert check_facets([Facet("totalDigits", "3")], "1234", _q("integer"))
        assert check_facets([Facet("totalDigits", "4")], "1234", _q("integer")) == []
        assert check_facets([Facet("fractionDigits", "2")], "1.234", _q("decimal"))
        assert check_facets([Facet("fractionDigits", "3")], "1.234", _q("decimal")) == []

    def test_range_facet_on_garbage_value(self):
        problems = check_facets([Facet("minInclusive", "0")], "abc", _q("integer"))
        assert problems
