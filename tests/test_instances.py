"""Unit tests for instance generation and mutation."""

import pytest

from repro.errors import SchemaError
from repro.instances import (
    InstanceGenerator,
    add_unknown_attribute,
    add_unknown_child,
    corrupt_enumeration_value,
    drop_required_attribute,
    drop_required_child,
    sample_value,
)
from repro.xmlutil.qname import QName
from repro.xsd.components import XSD_NS, Facet
from repro.xsd.validator import validate_instance


def _q(local):
    return QName(XSD_NS, local)


class TestSampleValues:
    @pytest.mark.parametrize(
        "local", ["string", "integer", "decimal", "boolean", "date", "dateTime", "base64Binary", "token"]
    )
    def test_samples_are_lexically_valid(self, local):
        from repro.xsd.datatypes import check_builtin

        assert check_builtin(_q(local), sample_value(_q(local), []))

    def test_enumeration_dominates(self):
        facets = [Facet("enumeration", "AUS"), Facet("enumeration", "AUT")]
        assert sample_value(_q("token"), facets) == "AUS"

    def test_length_facets_respected(self):
        assert len(sample_value(_q("string"), [Facet("length", "5")])) == 5
        assert len(sample_value(_q("string"), [Facet("maxLength", "3")])) <= 3

    def test_range_facets_respected(self):
        assert sample_value(_q("integer"), [Facet("minInclusive", "100")]) == "100"


class TestGenerator:
    def test_generated_instances_validate(self, easybiz_schema_set):
        generator = InstanceGenerator(easybiz_schema_set)
        document = generator.generate("HoardingPermit")
        assert validate_instance(easybiz_schema_set, document) == []

    def test_generated_string_form_validates(self, easybiz_schema_set):
        generator = InstanceGenerator(easybiz_schema_set)
        text = generator.generate_string("HoardingPermit")
        assert text.startswith("<?xml")
        assert validate_instance(easybiz_schema_set, text) == []

    def test_minimal_instance_omits_optionals(self, easybiz_schema_set):
        generator = InstanceGenerator(easybiz_schema_set, fill_optional=False)
        document = generator.generate("HoardingPermit")
        locals_ = [child.tag.rpartition(":")[2] for child in document.element_children]
        assert "ClosureReason" not in locals_
        assert "IncludedRegistration" in locals_
        assert validate_instance(easybiz_schema_set, document) == []

    def test_repeat_unbounded_controls_fanout(self, easybiz_schema_set):
        generator = InstanceGenerator(easybiz_schema_set, repeat_unbounded=4)
        document = generator.generate("HoardingPermit")
        attachments = [c for c in document.element_children if c.tag.endswith("IncludedAttachment")]
        assert len(attachments) == 4

    def test_determinism(self, easybiz_schema_set):
        first = InstanceGenerator(easybiz_schema_set).generate_string("HoardingPermit")
        second = InstanceGenerator(easybiz_schema_set).generate_string("HoardingPermit")
        assert first == second

    def test_unknown_root_raises(self, easybiz_schema_set):
        with pytest.raises(SchemaError):
            InstanceGenerator(easybiz_schema_set).generate("NotAnElement")

    def test_qname_root(self, easybiz_schema_set):
        root = QName("urn:au:gov:vic:easybiz:data:draft:EB005-HoardingPermit", "HoardingPermit")
        document = InstanceGenerator(easybiz_schema_set).generate(root)
        assert validate_instance(easybiz_schema_set, document) == []


class TestMutations:
    @pytest.fixture
    def instance(self, easybiz_schema_set):
        return InstanceGenerator(easybiz_schema_set).generate("HoardingPermit")

    def test_drop_required_child_invalidates(self, easybiz_schema_set, instance):
        assert drop_required_child(instance, "IncludedRegistration")
        assert validate_instance(easybiz_schema_set, instance)

    def test_drop_missing_child_returns_false(self, instance):
        assert not drop_required_child(instance, "NoSuchThing")

    def test_corrupt_enum_invalidates(self, easybiz_schema_set, instance):
        assert corrupt_enumeration_value(instance, "CountryName")
        problems = validate_instance(easybiz_schema_set, instance)
        assert any("enumerated" in p.message for p in problems)

    def test_drop_required_attribute_invalidates(self, easybiz_schema_set, instance):
        # The IsClosed* elements carry required code-list attributes.
        assert drop_required_attribute(instance, "CodeListAgName")
        problems = validate_instance(easybiz_schema_set, instance)
        assert any("missing required attribute" in p.message for p in problems)

    def test_add_unknown_child_invalidates(self, easybiz_schema_set, instance):
        add_unknown_child(instance)
        assert validate_instance(easybiz_schema_set, instance)

    def test_add_unknown_attribute_invalidates(self, easybiz_schema_set, instance):
        add_unknown_attribute(instance)
        problems = validate_instance(easybiz_schema_set, instance)
        assert any("undeclared attribute" in p.message for p in problems)

    def test_every_mutation_is_detected(self, easybiz_schema_set):
        mutations = [
            lambda doc: drop_required_child(doc, "IncludedRegistration"),
            lambda doc: drop_required_child(doc, "Designation"),
            lambda doc: corrupt_enumeration_value(doc, "CountryName"),
            lambda doc: drop_required_attribute(doc, "CodeListName"),
            lambda doc: add_unknown_child(doc),
            lambda doc: add_unknown_attribute(doc),
        ]
        for index, mutate in enumerate(mutations):
            document = InstanceGenerator(easybiz_schema_set).generate("HoardingPermit")
            assert mutate(document), f"mutation #{index} found no target"
            assert validate_instance(easybiz_schema_set, document), f"mutation #{index} undetected"
