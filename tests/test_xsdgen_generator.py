"""Unit tests for generator orchestration: sessions, memoization, errors."""

import pytest

from repro.ccts.model import CctsModel
from repro.errors import GenerationError
from repro.xsdgen import GenerationOptions, SchemaGenerator
from repro.xsdgen.session import GenerationSession


class TestSession:
    def test_status_accumulates(self):
        session = GenerationSession()
        session.status("one")
        session.status("two")
        assert session.log == "one\ntwo"

    def test_fail_records_and_raises(self):
        session = GenerationSession()
        with pytest.raises(GenerationError):
            session.fail("boom")
        assert "ERROR: boom" in session.log


class TestOrchestration:
    def test_memoization_single_schema_per_library(self, easybiz):
        generator = SchemaGenerator(easybiz.model)
        result = generator.generate(easybiz.doc_library, root="HoardingPermit")
        # Six schemas: DOC, 2 BIE, CDT, QDT, ENUM; CDT library referenced
        # from three places but generated once.
        assert len(result.schemas) == 6

    def test_generate_by_library_name(self, easybiz):
        generator = SchemaGenerator(easybiz.model)
        result = generator.generate("CommonAggregates")
        assert result.root.library.name == "CommonAggregates"

    def test_prim_library_has_no_generator(self, easybiz):
        generator = SchemaGenerator(easybiz.model)
        with pytest.raises(GenerationError, match="PRIMLibraries"):
            generator.generate(easybiz.prim_library)

    def test_erroneous_model_aborts(self):
        model = CctsModel("Bad")
        business = model.add_business_library("B", "urn:bad")
        bies = business.add_bie_library("L")
        bies.add_abie("Orphan")  # no basedOn -> UPCC-B01 error
        generator = SchemaGenerator(model)
        with pytest.raises(GenerationError, match="erroneous"):
            generator.generate(bies)
        assert any("ERROR" in message for message in generator.session.messages)

    def test_validation_can_be_skipped(self):
        model = CctsModel("Bad")
        business = model.add_business_library("B", "urn:bad")
        bies = business.add_bie_library("L")
        bies.add_abie("Orphan")
        generator = SchemaGenerator(model, GenerationOptions(validate_first=False))
        result = generator.generate(bies)
        assert len(result.schemas) == 1

    def test_status_messages_mention_progress(self, easybiz):
        generator = SchemaGenerator(easybiz.model)
        generator.generate(easybiz.doc_library, root="HoardingPermit")
        log = generator.session.log
        assert "Selected root element 'HoardingPermit'" in log
        assert "Generation finished: 6 schema(s)" in log

    def test_write_to_uses_ndr_layout(self, easybiz, tmp_path):
        options = GenerationOptions(target_directory=tmp_path)
        generator = SchemaGenerator(easybiz.model, options)
        generator.generate(easybiz.doc_library, root="HoardingPermit")
        folder = tmp_path / "urn_au_gov_vic_easybiz_"
        assert folder.is_dir()
        files = sorted(path.name for path in folder.iterdir())
        assert "data_draft_EB005-HoardingPermit_0.4.xsd" in files
        assert "types_draft_coredatatypes_1.0.xsd" in files
        assert len(files) == 6

    def test_cyclic_bie_libraries_generate(self):
        model = CctsModel("Cyclic")
        business = model.add_business_library("B", "urn:cyc")
        prims = business.add_prim_library("P")
        string = prims.add_primitive("String")
        cdts = business.add_cdt_library("D")
        text = cdts.add_cdt("Text")
        text.set_content(string.element)
        ccs = business.add_cc_library("C")
        a_acc = ccs.add_acc("A")
        a_acc.add_bcc("Name", text, "0..1")
        b_acc = ccs.add_acc("B")
        b_acc.add_bcc("Name", text, "0..1")
        a_acc.add_ascc("Linked", b_acc, "0..1")
        b_acc.add_ascc("Back", a_acc, "0..1")
        lib1 = business.add_bie_library("L1")
        lib2 = business.add_bie_library("L2")
        from repro.ccts.derivation import derive_abie

        a = derive_abie(lib1, a_acc)
        a.include("Name", "0..1")
        b = derive_abie(lib2, b_acc)
        b.include("Name", "0..1")
        a.connect("Linked", b.abie, "0..1", based_on="Linked")
        b.connect("Back", a.abie, "0..1", based_on="Back")
        generator = SchemaGenerator(model)
        result = generator.generate(lib1)
        assert len(result.schemas) == 3  # L1, L2, D
        schema1 = result.schemas[result.root_namespace]
        imported = {imp.namespace for imp in schema1.schema.imports}
        assert any(ns.endswith(":L2") for ns in imported)
        # and L2 imports L1 back
        l2 = next(g for g in result.schemas.values() if g.library.name == "L2")
        assert any(imp.namespace.endswith(":L1") for imp in l2.schema.imports)

    def test_result_root_requires_generation(self):
        from repro.xsdgen.generator import GenerationResult

        with pytest.raises(GenerationError):
            GenerationResult().root


def _two_root_model():
    """A DOC library with two independent root ABIEs, A and B."""
    from repro.ccts.derivation import derive_abie

    model = CctsModel("TwoRoots")
    business = model.add_business_library("B", "urn:two")
    prims = business.add_prim_library("P")
    string = prims.add_primitive("String")
    cdts = business.add_cdt_library("D")
    text = cdts.add_cdt("Text")
    text.set_content(string.element)
    ccs = business.add_cc_library("C")
    a_acc = ccs.add_acc("Alpha")
    a_acc.add_bcc("Name", text, "0..1")
    b_acc = ccs.add_acc("Beta")
    b_acc.add_bcc("Code", text, "0..1")
    doc = business.add_doc_library("Docs")
    derive_abie(doc, a_acc).include("Name", "0..1")
    derive_abie(doc, b_acc).include("Code", "0..1")
    return model, doc


class TestMemoKeying:
    def test_different_roots_yield_different_schemas(self):
        # Regression: the old memo keyed on the library element alone, so
        # a second generate() with another root returned the first schema.
        model, doc = _two_root_model()
        generator = SchemaGenerator(model)
        alpha = generator.generate(doc, root="Alpha")
        beta = generator.generate(doc, root="Beta")
        alpha_doc = alpha.root.to_string()
        beta_doc = beta.root.to_string()
        assert alpha_doc != beta_doc
        assert '"Alpha"' in alpha_doc and '"Alpha"' not in beta_doc
        assert '"Beta"' in beta_doc and '"Beta"' not in alpha_doc

    def test_roots_match_single_run_generators(self):
        # Each per-root schema from one shared generator must equal the
        # schema a dedicated generator produces for that root.
        model, doc = _two_root_model()
        shared = SchemaGenerator(model)
        alpha = shared.generate(doc, root="Alpha").root.to_string()
        beta = shared.generate(doc, root="Beta").root.to_string()
        model2, doc2 = _two_root_model()
        assert SchemaGenerator(model2).generate(doc2, root="Alpha").root.to_string() == alpha
        model3, doc3 = _two_root_model()
        assert SchemaGenerator(model3).generate(doc3, root="Beta").root.to_string() == beta


class TestResultScoping:
    def test_no_leak_between_runs(self, easybiz):
        # Regression: a reused generator leaked every previously generated
        # schema into later results.  A run for a leaf library must return
        # only what that library reaches.
        generator = SchemaGenerator(easybiz.model)
        first = generator.generate(easybiz.doc_library, root="HoardingPermit")
        assert len(first.schemas) == 6
        second = generator.generate("EnumerationTypes")
        assert len(second.schemas) == 1
        assert second.root.library.name == "EnumerationTypes"

    def test_scoped_result_still_contains_transitive_imports(self, easybiz):
        generator = SchemaGenerator(easybiz.model)
        generator.generate(easybiz.doc_library, root="HoardingPermit")
        result = generator.generate("CommonDataTypes")
        names = sorted(g.library.name for g in result.schemas.values())
        # QDTs import their base CDTs and content enumerations -- nothing else.
        assert names == ["CommonDataTypes", "EnumerationTypes", "coredatatypes"]
