"""Unit tests for packages, classifiers, associations and the model root."""

import pytest

from repro.errors import ModelError
from repro.uml.association import AggregationKind
from repro.uml.classifier import Class, DataType, Enumeration, PrimitiveType
from repro.uml.model import Model
from repro.uml.package import Package


class TestPackageConstruction:
    def test_add_package_with_stereotype_and_tags(self):
        root = Package("root")
        child = root.add_package("lib", stereotype="CCLibrary", baseURN="urn:x")
        assert child.has_stereotype("CCLibrary")
        assert child.tagged_value("CCLibrary", "baseURN") == "urn:x"
        assert child.owner is root

    def test_duplicate_package_rejected(self):
        root = Package("root")
        root.add_package("lib")
        with pytest.raises(ModelError):
            root.add_package("lib")

    def test_add_classifier_kinds(self):
        package = Package("p")
        assert isinstance(package.add_class("C"), Class)
        assert isinstance(package.add_data_type("D"), DataType)
        assert isinstance(package.add_primitive_type("P"), PrimitiveType)
        assert isinstance(package.add_enumeration("E"), Enumeration)

    def test_duplicate_classifier_rejected(self):
        package = Package("p")
        package.add_class("C")
        with pytest.raises(ModelError):
            package.add_data_type("C")

    def test_lookup(self):
        package = Package("p")
        cls = package.add_class("C")
        assert package.classifier("C") is cls
        assert package.find_classifier("C") is cls
        assert package.find_classifier("missing") is None
        with pytest.raises(ModelError):
            package.classifier("missing")
        with pytest.raises(ModelError):
            package.package("missing")


class TestClassifiers:
    def test_attribute_construction(self):
        package = Package("p")
        cls = package.add_class("C")
        cdt = package.add_data_type("T")
        prop = cls.add_attribute("field", cdt, "0..1", stereotype="BCC", definition="doc")
        assert prop.type is cdt
        assert str(prop.multiplicity) == "0..1"
        assert prop.tagged_value("BCC", "definition") == "doc"

    def test_duplicate_attribute_rejected(self):
        cls = Class("C")
        cls.add_attribute("a")
        with pytest.raises(ModelError):
            cls.add_attribute("a")

    def test_attribute_lookup(self):
        cls = Class("C")
        prop = cls.add_attribute("a")
        assert cls.attribute("a") is prop
        with pytest.raises(ModelError):
            cls.attribute("missing")

    def test_attributes_with_stereotype(self):
        cls = Class("C")
        cls.add_attribute("a", stereotype="BCC")
        cls.add_attribute("b", stereotype="BCC")
        cls.add_attribute("c")
        assert [p.name for p in cls.attributes_with_stereotype("BCC")] == ["a", "b"]

    def test_enumeration_literals(self):
        enum = Enumeration("E")
        enum.add_literal("USA", "United States")
        enum.add_literal("AUT")
        assert enum.literal_names() == ["USA", "AUT"]
        assert enum.literals[1].value == "AUT"
        with pytest.raises(ModelError):
            enum.add_literal("USA")


class TestAssociations:
    def test_association_shape(self):
        package = Package("p")
        a = package.add_class("A")
        b = package.add_class("B")
        assoc = package.add_association(a, b, "part", "0..*", AggregationKind.SHARED, stereotype="ASCC")
        assert assoc.source.type is a
        assert assoc.target.type is b
        assert assoc.target.name == "part"
        assert assoc.is_shared and not assoc.is_composite
        assert str(assoc.target.multiplicity) == "0..*"
        assert package.associations_from(a) == [assoc]
        assert package.associations_from(b) == []

    def test_association_ends_are_walked(self):
        package = Package("p")
        a = package.add_class("A")
        b = package.add_class("B")
        assoc = package.add_association(a, b, "part")
        walked = list(assoc.walk())
        assert assoc.source in walked and assoc.target in walked


class TestModelQueries:
    def _model(self):
        model = Model("M")
        lib = model.add_package("lib")
        a = lib.add_class("A", stereotype="ACC")
        b = lib.add_class("B", stereotype="ACC")
        other = model.add_package("other")
        other.add_association(a, b, "linked", stereotype="ASCC")
        lib.add_dependency(b, a, stereotype="basedOn")
        return model, lib, a, b

    def test_all_with_stereotype(self):
        model, _, a, b = self._model()
        found = list(model.all_with_stereotype("ACC"))
        assert a in found and b in found

    def test_associations_anywhere_from_crosses_packages(self):
        model, _, a, _ = self._model()
        assert len(model.associations_anywhere_from(a)) == 1

    def test_find_classifier_anywhere(self):
        model, _, a, _ = self._model()
        assert model.find_classifier_anywhere("A") is a
        assert model.find_classifier_anywhere("missing") is None

    def test_based_on_target(self):
        model, _, a, b = self._model()
        assert model.based_on_target(b) is a
        assert model.based_on_target(a) is None

    def test_duplicate_based_on_raises(self):
        model, lib, a, b = self._model()
        lib.add_dependency(b, a, stereotype="basedOn")
        with pytest.raises(ModelError):
            model.based_on_target(b)

    def test_owning_package_of(self):
        model, lib, a, _ = self._model()
        assert model.owning_package_of(a) is lib
        prop = a.add_attribute("x")
        assert model.owning_package_of(prop) is a.owner
