"""Unit tests for the CCTS typed wrappers (data types, CCs, BIEs, libraries)."""

import pytest

from repro.ccts.data_types import CoreDataType
from repro.ccts.model import CctsModel
from repro.errors import CctsError
from repro.uml.association import AggregationKind


@pytest.fixture
def base():
    """A small model with one of everything."""
    model = CctsModel("T")
    business = model.add_business_library("B", "urn:t")
    prims = business.add_prim_library("Prims")
    string = prims.add_primitive("String")
    enums = business.add_enum_library("Enums")
    codes = enums.add_enumeration("Country_Code", {"US": "United States", "AT": "Austria"})
    cdts = business.add_cdt_library("Cdts")
    code = cdts.add_cdt("Code")
    code.set_content(string.element)
    code.add_supplementary("ListName", string.element, "0..1")
    text = cdts.add_cdt("Text")
    text.set_content(string.element)
    return model, business, prims, enums, codes, cdts, code, text


class TestCoreDataType:
    def test_content_component(self, base):
        *_, code, _ = base
        content = code.content_component
        assert content is not None
        assert content.element.name == "Content"
        assert not content.restricted_by_enum

    def test_single_content_enforced(self, base):
        *_, code, _ = base
        with pytest.raises(CctsError):
            code.set_content(code.content_component.element.type)

    def test_supplementaries(self, base):
        *_, code, _ = base
        sups = code.supplementary_components
        assert [s.name for s in sups] == ["ListName"]
        assert str(sups[0].multiplicity) == "0..1"
        assert code.supplementary("ListName").element is sups[0].element
        with pytest.raises(CctsError):
            code.supplementary("Missing")

    def test_missing_content_is_none(self, base):
        _, _, _, _, _, cdts, *_ = base
        empty = cdts.add_cdt("Empty")
        assert empty.content_component is None


class TestEnumerationType:
    def test_literals(self, base):
        _, _, _, _, codes, *_ = base
        assert codes.literal_names == ["US", "AT"]
        assert codes.literals[0].value == "United States"

    def test_add_literal(self, base):
        _, _, _, _, codes, *_ = base
        codes.add_literal("DE", "Germany")
        assert "DE" in codes.literal_names


class TestAccWrapper:
    def test_bcc_construction_and_lookup(self, base):
        model, business, *_ , code, text = base
        ccs = business.add_cc_library("Ccs")
        person = ccs.add_acc("Person")
        bcc = person.add_bcc("Kind", code, "0..1")
        assert bcc.cdt.element is code.element
        assert bcc.acc.element is person.element
        assert person.bcc("Kind").element is bcc.element
        with pytest.raises(CctsError):
            person.bcc("Missing")

    def test_ascc_construction(self, base):
        model, business, *_ , code, text = base
        ccs = business.add_cc_library("Ccs")
        person = ccs.add_acc("Person")
        address = ccs.add_acc("Address")
        ascc = person.add_ascc("Home", address, "0..1", AggregationKind.SHARED)
        assert ascc.role == "Home"
        assert ascc.name == "Home"
        assert ascc.source.element is person.element
        assert ascc.target.element is address.element
        assert ascc.aggregation is AggregationKind.SHARED
        assert person.ascc("Home").element is ascc.element
        with pytest.raises(CctsError):
            person.ascc("Missing")

    def test_dens(self, base):
        model, business, *_ , code, text = base
        ccs = business.add_cc_library("Ccs")
        person = ccs.add_acc("Person")
        person.add_bcc("FirstName", text)
        address = ccs.add_acc("Address")
        person.add_ascc("Private", address)
        assert person.den() == "Person. Details"
        assert person.bcc("FirstName").den() == "Person. First Name. Text"
        assert person.ascc("Private").den() == "Person. Private. Address"


class TestLibraries:
    def test_tagged_value_accessors(self, base):
        _, business, *_ = base
        bies = business.add_bie_library("Bies", namespacePrefix="common")
        assert bies.base_urn == "urn:t"
        assert bies.namespace_prefix == "common"
        assert bies.status == "draft"
        assert bies.library_version == "1.0"
        bies.namespace_prefix = "other"
        assert bies.namespace_prefix == "other"

    def test_lookup_errors(self, base):
        _, business, prims, enums, _, cdts, *_ = base
        with pytest.raises(CctsError):
            prims.primitive("Missing")
        with pytest.raises(CctsError):
            enums.enumeration("Missing")
        with pytest.raises(CctsError):
            cdts.cdt("Missing")

    def test_business_library_lists_children(self, base):
        _, business, *_ = base
        kinds = {type(lib).__name__ for lib in business.libraries()}
        assert {"PrimLibrary", "EnumLibrary", "CdtLibrary"} <= kinds

    def test_model_library_queries(self, base):
        model, business, *_ = base
        business.add_doc_library("Docs")
        business.add_bie_library("Bies")
        assert len(model.doc_libraries()) == 1
        assert len(model.bie_libraries()) == 1  # DOC libraries are not BIE libraries
        assert model.library_named("Docs").name == "Docs"
        with pytest.raises(CctsError):
            model.library_named("Nope")

    def test_owning_library_of(self, base):
        model, business, *_, code, _ = base
        library = model.owning_library_of(code)
        assert library is not None and library.name == "Cdts"


class TestAbieWrapper:
    def _setup(self, base):
        model, business, *_ , code, text = base
        ccs = business.add_cc_library("Ccs")
        person = ccs.add_acc("Person")
        person.add_bcc("FirstName", text)
        address = ccs.add_acc("Address")
        address.add_bcc("Street", text)
        person.add_ascc("Private", address)
        bies = business.add_bie_library("Bies")
        return model, bies, person, address, text

    def test_manual_abie_and_compound_name(self, base):
        model, bies, person, address, text = self._setup(base)
        us_address = bies.add_abie("US_Address")
        us_person = bies.add_abie("US_Person")
        asbie = us_person.add_asbie("US_Private", us_address, "0..1")
        assert asbie.compound_name() == "US_PrivateUS_Address"
        assert us_person.qualifier == "US"
        assert us_person.asbie("US_Private").element is asbie.element

    def test_based_on_via_dependency(self, base):
        model, bies, person, address, text = self._setup(base)
        abie = bies.add_abie("US_Person")
        bies.package.add_dependency(abie.element, person.element, stereotype="basedOn")
        assert abie.based_on.element is person.element

    def test_based_on_none_without_dependency(self, base):
        model, bies, *_ = self._setup(base)
        abie = bies.add_abie("Loner")
        assert abie.based_on is None

    def test_bbie_data_type_dispatch(self, base):
        model, bies, person, address, text = self._setup(base)
        abie = bies.add_abie("X_Person")
        bbie = abie.add_bbie("FirstName", text)
        assert isinstance(bbie.data_type, CoreDataType)
        assert bbie.abie.element is abie.element
