"""Access log, request ids and the slow-request capture store."""

import json

import pytest

from repro.obs.trace import Tracer
from repro.serve.access import (
    ACCESS_LOG_FIELDS,
    AccessLog,
    SlowRequestStore,
    new_request_id,
)


class TestRequestIds:
    def test_ids_are_short_hex(self):
        request_id = new_request_id()
        assert len(request_id) == 12
        int(request_id, 16)  # hex or raise

    def test_ids_are_unique(self):
        assert len({new_request_id() for _ in range(256)}) == 256


class TestAccessLog:
    def test_record_schema(self, tmp_path):
        log = AccessLog(tmp_path / "access.jsonl")
        record = log.log(
            method="POST", path="/validate", status=200, duration_ms=12.3456,
            queue_wait_ms=1.2, worker="upcc-serve-worker-1",
            request_id="abc123", span_id="s9",
        )
        assert tuple(sorted(record)) == tuple(sorted(ACCESS_LOG_FIELDS))
        assert record["duration_ms"] == 12.346
        assert record["status"] == 200

    def test_jsonl_file_gets_one_parsable_line_per_request(self, tmp_path):
        path = tmp_path / "access.jsonl"
        log = AccessLog(path)
        for index in range(5):
            log.log(method="GET", path="/healthz", status=200,
                    duration_ms=0.1, request_id=f"id{index}")
        lines = path.read_text(encoding="utf-8").splitlines()
        assert len(lines) == 5
        assert log.lines_written == 5
        parsed = [json.loads(line) for line in lines]
        assert [record["request_id"] for record in parsed] == [
            "id0", "id1", "id2", "id3", "id4"
        ]

    def test_ring_is_bounded_and_ordered(self):
        log = AccessLog(ring=3)
        for index in range(10):
            log.log(method="GET", path=f"/{index}", status=200,
                    duration_ms=1.0, request_id=str(index))
        recent = log.recent()
        assert [record["path"] for record in recent] == ["/7", "/8", "/9"]

    def test_ring_only_mode_needs_no_file(self):
        log = AccessLog()
        log.log(method="GET", path="/stats", status=200, duration_ms=0.5)
        assert log.path is None
        assert len(log.recent()) == 1

    def test_creates_parent_directories(self, tmp_path):
        nested = tmp_path / "logs" / "deep" / "access.jsonl"
        AccessLog(nested).log(
            method="GET", path="/", status=200, duration_ms=0.1
        )
        assert nested.exists()


def _finished_span(tracer, slow_s=0.0):
    with tracer.span("serve.request", endpoint="validate") as root:
        with tracer.span("validate.doc"):
            if slow_s:
                import time

                time.sleep(slow_s)
    return root


class TestSlowRequestStore:
    @pytest.fixture
    def tracer(self):
        return Tracer(enabled=True)

    def test_capture_writes_jsonl_and_trace(self, tmp_path, tracer):
        store = SlowRequestStore(tmp_path, keep=4)
        root = _finished_span(tracer)
        entry = store.capture(root, request_id="req1", threshold_ms=0.0)
        assert entry["spans"] == 2
        jsonl = (tmp_path / entry["jsonl"]).read_text(encoding="utf-8")
        spans = [json.loads(line) for line in jsonl.splitlines()]
        assert {span["name"] for span in spans} == {"serve.request", "validate.doc"}
        assert any(span["parent_id"] is None for span in spans)
        trace = json.loads((tmp_path / entry["trace"]).read_text(encoding="utf-8"))
        assert trace["displayTimeUnit"] == "ms"
        assert len(trace["traceEvents"]) == 2
        assert all(event["ph"] == "X" for event in trace["traceEvents"])

    def test_ring_is_bounded_on_disk(self, tmp_path, tracer):
        store = SlowRequestStore(tmp_path, keep=2)
        for index in range(5):
            store.capture(_finished_span(tracer), request_id=f"req{index}")
        assert len(store) == 2
        files = sorted(path.name for path in tmp_path.iterdir())
        assert len(files) == 4  # 2 captures x (jsonl + trace)
        listed = store.list()
        assert [entry["request_id"] for entry in listed] == ["req3", "req4"]
        assert all((tmp_path / entry["jsonl"]).exists() for entry in listed)

    def test_index_entries_carry_duration_and_endpoint(self, tmp_path, tracer):
        store = SlowRequestStore(tmp_path)
        root = _finished_span(tracer, slow_s=0.01)
        entry = store.capture(root, request_id="slowone", threshold_ms=5.0)
        assert entry["endpoint"] == "validate"
        assert entry["duration_ms"] >= 10.0
        assert entry["threshold_ms"] == 5.0
