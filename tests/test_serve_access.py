"""Access log, request ids and the slow-request capture store."""

import json

import pytest

from repro.obs.trace import Tracer
from repro.serve.access import (
    ACCESS_LOG_FIELDS,
    AccessLog,
    SlowRequestStore,
    new_request_id,
)


class TestRequestIds:
    def test_ids_are_short_hex(self):
        request_id = new_request_id()
        assert len(request_id) == 12
        int(request_id, 16)  # hex or raise

    def test_ids_are_unique(self):
        assert len({new_request_id() for _ in range(256)}) == 256


class TestAccessLog:
    def test_record_schema(self, tmp_path):
        log = AccessLog(tmp_path / "access.jsonl")
        record = log.log(
            method="POST", path="/validate", status=200, duration_ms=12.3456,
            queue_wait_ms=1.2, worker="upcc-serve-worker-1",
            request_id="abc123", span_id="s9",
        )
        assert tuple(sorted(record)) == tuple(sorted(ACCESS_LOG_FIELDS))
        assert record["duration_ms"] == 12.346
        assert record["status"] == 200

    def test_jsonl_file_gets_one_parsable_line_per_request(self, tmp_path):
        path = tmp_path / "access.jsonl"
        log = AccessLog(path)
        for index in range(5):
            log.log(method="GET", path="/healthz", status=200,
                    duration_ms=0.1, request_id=f"id{index}")
        lines = path.read_text(encoding="utf-8").splitlines()
        assert len(lines) == 5
        assert log.lines_written == 5
        parsed = [json.loads(line) for line in lines]
        assert [record["request_id"] for record in parsed] == [
            "id0", "id1", "id2", "id3", "id4"
        ]

    def test_ring_is_bounded_and_ordered(self):
        log = AccessLog(ring=3)
        for index in range(10):
            log.log(method="GET", path=f"/{index}", status=200,
                    duration_ms=1.0, request_id=str(index))
        recent = log.recent()
        assert [record["path"] for record in recent] == ["/7", "/8", "/9"]

    def test_ring_only_mode_needs_no_file(self):
        log = AccessLog()
        log.log(method="GET", path="/stats", status=200, duration_ms=0.5)
        assert log.path is None
        assert len(log.recent()) == 1

    def test_creates_parent_directories(self, tmp_path):
        nested = tmp_path / "logs" / "deep" / "access.jsonl"
        AccessLog(nested).log(
            method="GET", path="/", status=200, duration_ms=0.1
        )
        assert nested.exists()


def _finished_span(tracer, slow_s=0.0):
    with tracer.span("serve.request", endpoint="validate") as root:
        with tracer.span("validate.doc"):
            if slow_s:
                import time

                time.sleep(slow_s)
    return root


class TestSlowRequestStore:
    @pytest.fixture
    def tracer(self):
        return Tracer(enabled=True)

    def test_capture_writes_jsonl_and_trace(self, tmp_path, tracer):
        store = SlowRequestStore(tmp_path, keep=4)
        root = _finished_span(tracer)
        entry = store.capture(root, request_id="req1", threshold_ms=0.0)
        assert entry["spans"] == 2
        jsonl = (tmp_path / entry["jsonl"]).read_text(encoding="utf-8")
        spans = [json.loads(line) for line in jsonl.splitlines()]
        assert {span["name"] for span in spans} == {"serve.request", "validate.doc"}
        assert any(span["parent_id"] is None for span in spans)
        trace = json.loads((tmp_path / entry["trace"]).read_text(encoding="utf-8"))
        assert trace["displayTimeUnit"] == "ms"
        assert len(trace["traceEvents"]) == 2
        assert all(event["ph"] == "X" for event in trace["traceEvents"])

    def test_ring_is_bounded_on_disk(self, tmp_path, tracer):
        store = SlowRequestStore(tmp_path, keep=2)
        for index in range(5):
            store.capture(_finished_span(tracer), request_id=f"req{index}")
        assert len(store) == 2
        files = sorted(path.name for path in tmp_path.iterdir())
        assert len(files) == 4  # 2 captures x (jsonl + trace)
        listed = store.list()
        assert [entry["request_id"] for entry in listed] == ["req3", "req4"]
        assert all((tmp_path / entry["jsonl"]).exists() for entry in listed)

    def test_index_entries_carry_duration_and_endpoint(self, tmp_path, tracer):
        store = SlowRequestStore(tmp_path)
        root = _finished_span(tracer, slow_s=0.01)
        entry = store.capture(root, request_id="slowone", threshold_ms=5.0)
        assert entry["endpoint"] == "validate"
        assert entry["duration_ms"] >= 10.0
        assert entry["threshold_ms"] == 5.0


class TestAccessLogRotation:
    def _fill(self, log, n, path="/validate"):
        for index in range(n):
            log.log(method="POST", path=path, status=200,
                    duration_ms=1.0, request_id=f"req{index:04d}")

    def test_rotates_once_past_max_bytes(self, tmp_path):
        path = tmp_path / "access.jsonl"
        log = AccessLog(path, max_bytes=600, keep_rolled=2)
        self._fill(log, 10)
        assert log.rotations >= 1
        rolled = path.with_name("access.jsonl.1")
        assert rolled.exists()
        # Every line in every generation is still valid JSON:
        for file in (path, rolled):
            if file.exists():
                for line in file.read_text(encoding="utf-8").splitlines():
                    json.loads(line)

    def test_keep_rolled_bounds_generations(self, tmp_path):
        path = tmp_path / "access.jsonl"
        log = AccessLog(path, max_bytes=200, keep_rolled=2)
        self._fill(log, 40)
        generations = sorted(p.name for p in tmp_path.iterdir())
        assert set(generations) <= {
            "access.jsonl", "access.jsonl.1", "access.jsonl.2"
        }
        assert "access.jsonl.1" in generations
        assert log.rotations > 2  # older generations were dropped, not kept

    def test_no_records_lost_across_rotation(self, tmp_path):
        path = tmp_path / "access.jsonl"
        log = AccessLog(path, max_bytes=500, keep_rolled=8)
        self._fill(log, 12)
        records = []
        for file in sorted(tmp_path.iterdir()):
            for line in file.read_text(encoding="utf-8").splitlines():
                records.append(json.loads(line))
        assert len(records) == 12
        assert {r["request_id"] for r in records} == {
            f"req{i:04d}" for i in range(12)
        }

    def test_existing_file_size_counts_toward_the_bound(self, tmp_path):
        path = tmp_path / "access.jsonl"
        self._fill(AccessLog(path), 5)
        size = path.stat().st_size
        log = AccessLog(path, max_bytes=size + 10, keep_rolled=2)
        self._fill(log, 1)
        assert log.rotations == 1

    def test_unbounded_by_default(self, tmp_path):
        log = AccessLog(tmp_path / "access.jsonl")
        self._fill(log, 20)
        assert log.rotations == 0
        assert log.max_bytes is None

    def test_size_accounting_counts_encoded_bytes(self, tmp_path):
        # Multibyte paths: the rotation trigger must track what stat()
        # reports (UTF-8 bytes), not Python character counts.
        path = tmp_path / "access.jsonl"
        log = AccessLog(path, max_bytes=10_000, keep_rolled=2)
        self._fill(log, 3, path="/schémas/валидация/校验")
        assert log.rotations == 0
        assert log._bytes == path.stat().st_size

    def test_failed_rotation_keeps_counter_and_retries(self, tmp_path, monkeypatch):
        from pathlib import Path

        path = tmp_path / "access.jsonl"
        log = AccessLog(path, max_bytes=300, keep_rolled=2)

        def refuse(self, target):
            raise OSError("EXDEV: cross-device link")

        monkeypatch.setattr(Path, "rename", refuse)
        self._fill(log, 10)
        # Rename failures must not reset the byte counter or count as
        # rotations -- otherwise the live file grows forever.
        assert log.rotations == 0
        assert log._bytes == path.stat().st_size
        assert log._bytes > 300
        monkeypatch.undo()
        # Once renames work again the very next append rotates:
        self._fill(log, 1)
        assert log.rotations == 1
        assert path.with_name("access.jsonl.1").exists()


class TestTraceIdField:
    def test_trace_id_recorded_and_in_schema(self, tmp_path):
        log = AccessLog(tmp_path / "access.jsonl")
        trace_id = "ab" * 16
        record = log.log(
            method="POST", path="/validate", status=200, duration_ms=1.0,
            request_id="req1", span_id="s1", trace_id=trace_id,
        )
        assert record["trace_id"] == trace_id
        assert "trace_id" in ACCESS_LOG_FIELDS

    def test_trace_id_defaults_to_empty(self):
        log = AccessLog()
        record = log.log(method="GET", path="/healthz", status=200, duration_ms=0.1)
        assert record["trace_id"] == ""

    def test_slow_capture_carries_trace_id(self, tmp_path):
        tracer = Tracer(enabled=True)
        store = SlowRequestStore(tmp_path)
        root = _finished_span(tracer)
        entry = store.capture(root, request_id="req1", trace_id="cd" * 16)
        assert entry["trace_id"] == "cd" * 16
        assert store.list()[0]["trace_id"] == "cd" * 16
