"""Unit tests for the model snapshot index."""

import pytest

from repro.errors import ModelError
from repro.uml.index import ModelIndex
from repro.uml.model import Model


def _model():
    model = Model("M")
    lib = model.add_package("lib")
    a = lib.add_class("A")
    b = lib.add_class("B")
    c = lib.add_class("C")
    other = model.add_package("other")
    first = other.add_association(a, b, "x")
    second = lib.add_association(a, c, "y")
    dep = lib.add_dependency(b, a, stereotype="basedOn")
    plain = lib.add_dependency(c, a)
    return model, a, b, c, first, second, dep, plain


class TestModelIndex:
    def test_associations_from(self):
        model, a, b, c, first, second, *_ = _model()
        index = ModelIndex(model)
        # Results come back in model walk order, matching the scan variant.
        assert index.associations_from(a) == model.associations_anywhere_from(a)
        assert set(index.associations_from(a)) == {first, second}
        assert index.associations_from(b) == []

    def test_dependency_lookup(self):
        model, a, b, c, first, second, dep, plain = _model()
        index = ModelIndex(model)
        assert index.dependencies_of(b) == [dep]
        assert index.dependencies_of(c, "basedOn") == []
        assert index.dependencies_of(c) == [plain]

    def test_based_on_target(self):
        model, a, b, *_ = _model()
        index = ModelIndex(model)
        assert index.based_on_target(b) is a
        assert index.based_on_target(a) is None

    def test_duplicate_based_on_raises(self):
        model, a, b, *_ = _model()
        model.package("lib").add_dependency(b, a, stereotype="basedOn")
        index = ModelIndex(model)
        with pytest.raises(ModelError):
            index.based_on_target(b)

    def test_index_agrees_with_scan_on_easybiz(self, easybiz):
        model = easybiz.model.model
        index = ModelIndex(model)
        for abie in easybiz.model.abies():
            scanned = model.associations_anywhere_from(abie.element)
            assert index.associations_from(abie.element) == scanned


class TestIndexedContext:
    def test_queries_identical_inside_and_outside(self, easybiz):
        model = easybiz.model.model
        permit = easybiz.hoarding_permit.element
        outside = model.associations_anywhere_from(permit)
        with model.indexed():
            inside = model.associations_anywhere_from(permit)
        assert inside == outside

    def test_reentrant(self, easybiz):
        model = easybiz.model.model
        with model.indexed() as outer:
            with model.indexed() as inner:
                assert inner is outer
            assert model._active_index is outer
        assert model._active_index is None

    def test_index_dropped_on_exception(self, easybiz):
        model = easybiz.model.model
        with pytest.raises(RuntimeError):
            with model.indexed():
                raise RuntimeError("boom")
        assert model._active_index is None

    def test_generation_results_identical_with_and_without_index(self, easybiz):
        # The generator uses the index internally; a manual no-index run
        # through the same builders must match.
        from repro.xsdgen import SchemaGenerator

        first = SchemaGenerator(easybiz.model).generate(easybiz.doc_library, root="HoardingPermit")
        second = SchemaGenerator(easybiz.model).generate(easybiz.doc_library, root="HoardingPermit")
        assert {u: g.to_string() for u, g in first.schemas.items()} == {
            u: g.to_string() for u, g in second.schemas.items()
        }


class TestIndexReuse:
    def test_snapshot_reused_while_unmutated(self, easybiz):
        model = easybiz.model.model
        with model.indexed() as first:
            pass
        with model.indexed() as second:
            pass
        assert second is first

    def test_snapshot_rebuilt_after_mutation(self, easybiz):
        model = easybiz.model.model
        with model.indexed() as first:
            pass
        easybiz.hoarding_permit.element.documentation = "edited"
        with model.indexed() as second:
            pass
        assert second is not first

    def test_reused_snapshot_answers_correctly(self, easybiz):
        model = easybiz.model.model
        permit = easybiz.hoarding_permit.element
        with model.indexed():
            pass
        outside = model.associations_anywhere_from(permit)
        with model.indexed():
            assert model.associations_anywhere_from(permit) == outside
