"""Shared fixtures: catalog models and generated schema sets."""

from __future__ import annotations

import pytest

from repro.catalog.easybiz import build_easybiz_model
from repro.catalog.ecommerce import build_ecommerce_model
from repro.catalog.figure1 import build_figure1_model
from repro.xsdgen import GenerationOptions, SchemaGenerator


@pytest.fixture
def figure1():
    """A fresh Figure-1 model."""
    return build_figure1_model()


@pytest.fixture
def easybiz():
    """A fresh Figure-4 EasyBiz model."""
    return build_easybiz_model()


@pytest.fixture
def ecommerce():
    """A fresh purchase-order model."""
    return build_ecommerce_model()


@pytest.fixture
def easybiz_result(easybiz):
    """The schemas generated from the EasyBiz DOCLibrary (Figure 6 run)."""
    generator = SchemaGenerator(easybiz.model, GenerationOptions())
    return generator.generate(easybiz.doc_library, root="HoardingPermit")


@pytest.fixture
def easybiz_schema_set(easybiz_result):
    """The EasyBiz schemas as a validator-ready SchemaSet."""
    return easybiz_result.schema_set()
