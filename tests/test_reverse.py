"""Tests for reverse engineering schema sets into UPCC models."""

import pytest

from repro.reverse import reverse_engineer
from repro.validation import validate_model
from repro.xsdgen import SchemaGenerator


@pytest.fixture
def reversed_easybiz(easybiz_result):
    return reverse_engineer(easybiz_result.schema_set()), easybiz_result


class TestReconstruction:
    def test_model_validates_clean(self, reversed_easybiz):
        report, _ = reversed_easybiz
        validation = validate_model(report.model)
        assert validation.ok, str(validation)

    def test_document_detection(self, reversed_easybiz):
        report, _ = reversed_easybiz
        assert report.doc_library_names == ["EB005-HoardingPermit"]
        assert report.root_elements == ["HoardingPermit"]

    def test_libraries_recovered_from_urns(self, reversed_easybiz):
        report, _ = reversed_easybiz
        names = {library.name for library in report.model.libraries()}
        assert {"EB005-HoardingPermit", "CommonAggregates", "LocalLawAggregates",
                "CommonDataTypes", "coredatatypes", "EnumerationTypes"} <= names

    def test_abies_and_bbies_recovered(self, reversed_easybiz):
        report, _ = reversed_easybiz
        permit = report.model.abie("HoardingPermit")
        assert [b.name for b in permit.bbies] == [
            "ClosureReason", "IsClosedFootpath", "IsClosedRoad", "SafetyPrecaution",
        ]

    def test_compound_names_split_back(self, reversed_easybiz):
        report, _ = reversed_easybiz
        permit = report.model.abie("HoardingPermit")
        pairs = {(a.role, a.target.name) for a in permit.asbies}
        assert pairs == {
            ("Included", "Attachment"), ("Current", "Application"),
            ("Included", "Registration"), ("Billing", "Person_Identification"),
        }

    def test_aggregation_kinds_recovered(self, reversed_easybiz):
        from repro.uml.association import AggregationKind

        report, _ = reversed_easybiz
        person = report.model.abie("Person_Identification")
        assert person.asbie("Assigned").aggregation is AggregationKind.SHARED
        assert person.asbie("Personal").aggregation is AggregationKind.COMPOSITE

    def test_qdts_and_enums_recovered(self, reversed_easybiz):
        report, _ = reversed_easybiz
        qdts = {q.name for q in report.model.qdts()}
        assert {"CountryType", "CouncilType", "Indicator_Code", "RegistrationType_Code"} <= qdts
        country = next(q for q in report.model.qdts() if q.name == "CountryType")
        assert country.content_enum is not None
        assert country.content_enum.literal_names == ["USA", "AUT", "AUS"]

    def test_shadow_core_layer_synthesized(self, reversed_easybiz):
        report, _ = reversed_easybiz
        accs = {acc.name for acc in report.model.accs()}
        assert {"HoardingPermit", "Attachment", "Application",
                "Person_Identification", "Signature", "Address", "Registration"} <= accs
        for abie in report.model.abies():
            assert abie.based_on is not None

    def test_user_prefix_recovered(self, reversed_easybiz):
        report, _ = reversed_easybiz
        common = report.model.library_named("CommonAggregates")
        assert common.namespace_prefix == "commonAggregates"


class TestRoundTrip:
    def test_regenerated_doc_schema_structurally_identical(self, reversed_easybiz):
        report, original = reversed_easybiz
        doc_library = report.model.library_named(report.doc_library_names[0])
        regenerated = SchemaGenerator(report.model).generate(
            doc_library, root=report.root_elements[0]
        )
        old = original.root.schema
        new = regenerated.root.schema
        assert new.target_namespace == old.target_namespace
        assert sorted(i.namespace for i in new.imports) == sorted(i.namespace for i in old.imports)
        old_particles = old.complex_type("HoardingPermitType").particle.particles
        new_particles = new.complex_type("HoardingPermitType").particle.particles
        assert [(p.name, p.type, p.min_occurs, p.max_occurs) for p in old_particles] == [
            (p.name, p.type, p.min_occurs, p.max_occurs) for p in new_particles
        ]
        assert new.global_element("HoardingPermit").type == old.global_element("HoardingPermit").type

    def test_regenerated_schemas_accept_original_instances(self, reversed_easybiz):
        from repro.instances import InstanceGenerator
        from repro.xsd.validator import validate_instance

        report, original = reversed_easybiz
        message = InstanceGenerator(original.schema_set()).generate("HoardingPermit")
        doc_library = report.model.library_named(report.doc_library_names[0])
        regenerated = SchemaGenerator(report.model).generate(
            doc_library, root=report.root_elements[0]
        )
        assert validate_instance(regenerated.schema_set(), message) == []

    def test_backward_compatibility_both_ways(self, reversed_easybiz):
        from repro.xsd.compat import check_compatibility

        report, original = reversed_easybiz
        doc_library = report.model.library_named(report.doc_library_names[0])
        regenerated = SchemaGenerator(report.model).generate(
            doc_library, root=report.root_elements[0]
        )
        forward = check_compatibility(original.schema_set(), regenerated.schema_set())
        assert forward.is_backward_compatible, [str(c) for c in forward.breaking]

    def test_ecommerce_reverse_round_trip(self, ecommerce):
        result = SchemaGenerator(ecommerce.model).generate(
            ecommerce.doc_library, root="PurchaseOrder"
        )
        report = reverse_engineer(result.schema_set())
        assert validate_model(report.model).ok
        assert report.root_elements == ["PurchaseOrder"]
        doc_library = report.model.library_named(report.doc_library_names[0])
        regenerated = SchemaGenerator(report.model).generate(doc_library, root="PurchaseOrder")
        from repro.instances import InstanceGenerator
        from repro.xsd.validator import validate_instance

        message = InstanceGenerator(result.schema_set()).generate("PurchaseOrder")
        assert validate_instance(regenerated.schema_set(), message) == []


class TestAnnotationRecovery:
    def test_definitions_survive_the_round_trip(self, easybiz):
        from repro.xsdgen import GenerationOptions

        easybiz.hoarding_permit.definition = "Permit to erect a hoarding."
        easybiz.hoarding_permit.element.set_tagged_value("ABIE", "version", "0.4")
        options = GenerationOptions(annotated=True)
        result = SchemaGenerator(easybiz.model, options).generate(
            easybiz.doc_library, root="HoardingPermit"
        )
        report = reverse_engineer(result.schema_set())
        permit = report.model.abie("HoardingPermit")
        assert permit.definition == "Permit to erect a hoarding."
        assert permit.version == "0.4"

    def test_unannotated_schemas_reverse_without_metadata(self, easybiz_result):
        report = reverse_engineer(easybiz_result.schema_set())
        permit = report.model.abie("HoardingPermit")
        assert permit.definition == ""
