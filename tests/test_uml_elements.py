"""Unit tests for the UML element base classes."""

import pytest

from repro.errors import ProfileError
from repro.uml.elements import NamedElement
from repro.uml.model import Model


class TestStereotypes:
    def test_apply_and_query(self):
        element = NamedElement("X")
        element.apply_stereotype("ACC", definition="an aggregate")
        assert element.has_stereotype("ACC")
        assert element.stereotypes == ["ACC"]
        assert element.tagged_value("ACC", "definition") == "an aggregate"

    def test_reapply_merges_tags(self):
        element = NamedElement("X")
        element.apply_stereotype("ACC", a="1")
        element.apply_stereotype("ACC", b="2")
        assert element.stereotype_applications["ACC"] == {"a": "1", "b": "2"}

    def test_remove(self):
        element = NamedElement("X")
        element.apply_stereotype("ACC")
        element.remove_stereotype("ACC")
        assert not element.has_stereotype("ACC")
        element.remove_stereotype("ACC")  # idempotent

    def test_tagged_value_default(self):
        element = NamedElement("X")
        assert element.tagged_value("ACC", "missing", "fallback") == "fallback"

    def test_set_tagged_value_requires_application(self):
        element = NamedElement("X")
        with pytest.raises(ProfileError):
            element.set_tagged_value("ACC", "definition", "boom")

    def test_any_tagged_value_searches_all(self):
        element = NamedElement("X")
        element.apply_stereotype("A")
        element.apply_stereotype("B", shared="found")
        assert element.any_tagged_value("shared") == "found"
        assert element.any_tagged_value("missing") is None


class TestNaming:
    def test_qualified_name(self):
        model = Model("M")
        package = model.add_package("P")
        cls = package.add_class("C")
        prop = cls.add_attribute("a")
        assert prop.qualified_name == "M.P.C.a"

    def test_namespace_is_nearest_package(self):
        model = Model("M")
        package = model.add_package("P")
        cls = package.add_class("C")
        prop = cls.add_attribute("a")
        assert prop.namespace is package
        assert cls.namespace is package

    def test_repr_shows_stereotypes(self):
        element = NamedElement("Person")
        element.apply_stereotype("ACC")
        assert "<<ACC>>" in repr(element)
        assert "Person" in repr(element)


class TestWalk:
    def test_walk_covers_everything(self):
        model = Model("M")
        package = model.add_package("P")
        cls = package.add_class("C")
        cls.add_attribute("a")
        names = [type(e).__name__ for e in model.walk()]
        assert names.count("Model") == 1
        assert names.count("Package") == 1
        assert names.count("Class") == 1
        assert names.count("Property") == 1


class TestStructuralRevision:
    def test_attribute_assignment_bumps(self):
        from repro.uml.elements import structural_revision

        element = NamedElement("X")
        before = structural_revision()
        element.name = "Y"
        assert structural_revision() > before

    def test_stereotype_and_tag_mutations_bump(self):
        from repro.uml.elements import structural_revision

        element = NamedElement("X")
        before = structural_revision()
        element.apply_stereotype("ACC", definition="d")
        after_apply = structural_revision()
        assert after_apply > before
        element.set_tagged_value("ACC", "definition", "e")
        after_tag = structural_revision()
        assert after_tag > after_apply
        element.remove_stereotype("ACC")
        assert structural_revision() > after_tag

    def test_removing_absent_stereotype_does_not_bump(self):
        from repro.uml.elements import structural_revision

        element = NamedElement("X")
        before = structural_revision()
        element.remove_stereotype("NotApplied")
        assert structural_revision() == before

    def test_reads_do_not_bump(self):
        from repro.uml.elements import structural_revision

        element = NamedElement("X")
        element.apply_stereotype("ACC", definition="d")
        before = structural_revision()
        element.tagged_value("ACC", "definition")
        element.has_stereotype("ACC")
        list(element.walk())
        repr(element)
        assert structural_revision() == before
