"""Tier-1 lint: library diagnostics must go through the obs layer.

``src/repro`` may not contain bare ``print(`` calls outside ``cli.py``
and the ``console`` package -- everything else reports through
:mod:`repro.obs` spans, metrics and loggers (see docs/observability.md).
"""

import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent


def _checker():
    sys.path.insert(0, str(ROOT / "tools"))
    try:
        import check_no_print
    finally:
        sys.path.pop(0)
    return check_no_print


def test_no_bare_print_in_library_code():
    checker = _checker()
    violations = checker.find_violations(ROOT / "src" / "repro")
    assert violations == [], (
        "bare print() calls in library code (use repro.obs instead): "
        + ", ".join(violations)
    )


def test_cli_and_console_are_exempt():
    checker = _checker()
    assert checker._allowed("cli.py")
    assert checker._allowed("console/maintenance.py")
    assert not checker._allowed("xsdgen/generator.py")


def test_checker_flags_a_planted_print(tmp_path):
    checker = _checker()
    package = tmp_path / "pkg"
    package.mkdir()
    (package / "bad.py").write_text("def f():\n    print('x')\n", encoding="utf-8")
    (package / "fine.py").write_text('"""print( in a docstring is fine."""\n', encoding="utf-8")
    assert checker.find_violations(package) == ["bad.py:2"]


def test_main_exit_codes(tmp_path, capsys):
    checker = _checker()
    clean = tmp_path / "clean"
    clean.mkdir()
    (clean / "ok.py").write_text("x = 1\n", encoding="utf-8")
    assert checker.main([str(clean)]) == 0
    dirty = tmp_path / "dirty"
    dirty.mkdir()
    (dirty / "bad.py").write_text("print('x')\n", encoding="utf-8")
    assert checker.main([str(dirty)]) == 1
    assert "bad.py:1" in capsys.readouterr().out
