"""Collect-mode generation: failure isolation, cause chains, cache hygiene."""

import pytest

import repro.xsdgen.qdt_library
from repro.errors import GenerationError
from repro.xsdgen import (
    GenerationCache,
    GenerationOptions,
    LibraryFailure,
    SchemaGenerator,
    get_generation_cache,
    set_generation_cache,
)


@pytest.fixture
def broken_qdt(monkeypatch):
    """Sabotage the QDTLibrary builder so every QDT build raises."""

    def explode(builder):
        raise GenerationError("sabotaged QDT build")

    monkeypatch.setattr(repro.xsdgen.qdt_library, "build", explode)


@pytest.fixture
def fresh_cache():
    previous = get_generation_cache()
    cache = GenerationCache()
    set_generation_cache(cache)
    yield cache
    set_generation_cache(previous)


def collect_generator(model, **overrides):
    options = GenerationOptions(on_error="collect", **overrides)
    return SchemaGenerator(model, options)


class TestOnErrorOption:
    def test_raise_is_the_default(self):
        assert GenerationOptions().on_error == "raise"

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="on_error"):
            GenerationOptions(on_error="ignore")

    def test_raise_mode_propagates_first_failure(self, easybiz, broken_qdt):
        generator = SchemaGenerator(easybiz.model, GenerationOptions())
        with pytest.raises(GenerationError, match="sabotaged QDT build"):
            generator.generate(easybiz.doc_library, root="HoardingPermit")


class TestCollectIsolation:
    def test_independent_libraries_still_build(self, easybiz, broken_qdt):
        generator = collect_generator(easybiz.model)
        result = generator.generate(easybiz.doc_library, root="HoardingPermit")
        assert not result.ok
        built = {schema.library.name for schema in result.schemas.values()}
        # CDT and ENUM libraries do not import the QDT library, so they
        # must still be generated; everything importing QDTs must not be.
        assert "coredatatypes" in built
        assert "EnumerationTypes" in built
        assert "CommonDataTypes" not in built
        assert "EB005-HoardingPermit" not in built

    def test_every_failure_is_recorded(self, easybiz, broken_qdt):
        generator = collect_generator(easybiz.model)
        result = generator.generate(easybiz.doc_library, root="HoardingPermit")
        failed = {failure.library_name for failure in result.errors}
        assert "CommonDataTypes" in failed
        assert "EB005-HoardingPermit" in failed
        for failure in result.errors:
            assert isinstance(failure, LibraryFailure)
            assert failure.stereotype
            assert failure.root_name is None or isinstance(failure.root_name, str)

    def test_importer_failure_names_the_culprit(self, easybiz, broken_qdt):
        generator = collect_generator(easybiz.model)
        result = generator.generate(easybiz.doc_library, root="HoardingPermit")
        by_name = {failure.library_name: failure for failure in result.errors}
        original = by_name["CommonDataTypes"]
        assert "sabotaged QDT build" in str(original.error)
        dependent = by_name["EB005-HoardingPermit"]
        assert "CommonDataTypes" in str(dependent.error)
        assert "sabotaged QDT build" in str(dependent.cause_chain[-1])

    def test_root_property_raises_when_root_failed(self, easybiz, broken_qdt):
        generator = collect_generator(easybiz.model)
        result = generator.generate(easybiz.doc_library, root="HoardingPermit")
        assert result.root_namespace is None
        with pytest.raises(GenerationError, match="requested library failed"):
            result.root

    def test_collect_without_failures_matches_raise_mode(self, easybiz):
        plain = SchemaGenerator(easybiz.model, GenerationOptions()).generate(
            easybiz.doc_library, root="HoardingPermit"
        )
        collected = collect_generator(easybiz.model).generate(
            easybiz.doc_library, root="HoardingPermit"
        )
        assert collected.ok
        assert collected.errors == []
        assert set(collected.schemas) == set(plain.schemas)
        assert collected.root.to_string() == plain.root.to_string()

    def test_parallel_collect_matches_serial(self, easybiz, broken_qdt):
        serial = collect_generator(easybiz.model).generate(
            easybiz.doc_library, root="HoardingPermit"
        )
        parallel = collect_generator(easybiz.model, jobs=4).generate(
            easybiz.doc_library, root="HoardingPermit"
        )
        assert set(parallel.schemas) == set(serial.schemas)
        assert {f.library_name for f in parallel.errors} == {
            f.library_name for f in serial.errors
        }

    def test_generator_recovers_once_fault_is_fixed(self, easybiz, monkeypatch):
        def explode(builder):
            raise GenerationError("sabotaged QDT build")

        real_build = repro.xsdgen.qdt_library.build
        generator = collect_generator(easybiz.model)
        monkeypatch.setattr(repro.xsdgen.qdt_library, "build", explode)
        first = generator.generate(easybiz.doc_library, root="HoardingPermit")
        assert not first.ok
        monkeypatch.setattr(repro.xsdgen.qdt_library, "build", real_build)
        second = generator.generate(easybiz.doc_library, root="HoardingPermit")
        assert second.ok
        assert second.root_namespace is not None

    def test_failure_counter_labeled_by_stereotype(self, easybiz, broken_qdt):
        import repro.obs as obs

        obs.configure(trace=False, reset_metrics=True)
        collect_generator(easybiz.model).generate(
            easybiz.doc_library, root="HoardingPermit"
        )
        snapshot = obs.get_metrics().render_json()
        assert "xsdgen.library_failures" in snapshot


class TestCacheHygiene:
    def test_failed_builds_never_reach_the_cache(self, easybiz, broken_qdt, fresh_cache):
        generator = collect_generator(easybiz.model, use_cache=True)
        result = generator.generate(easybiz.doc_library, root="HoardingPermit")
        assert not result.ok
        assert len(fresh_cache) == len(result.schemas)

    def test_successful_builds_are_cached(self, easybiz, fresh_cache):
        generator = collect_generator(easybiz.model, use_cache=True)
        result = generator.generate(easybiz.doc_library, root="HoardingPermit")
        assert result.ok
        assert len(fresh_cache) == len(result.schemas)


class TestLibraryFailure:
    def test_str_includes_cause_chain(self):
        root = ValueError("root cause")
        try:
            raise GenerationError("outer failure") from root
        except GenerationError as error:
            failure = LibraryFailure("Lib", "QDTLibrary", None, error)
        text = str(failure)
        assert "outer failure" in text
        assert "root cause" in text
        assert [str(cause) for cause in failure.cause_chain] == [
            "outer failure",
            "root cause",
        ]
