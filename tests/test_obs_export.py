"""Prometheus exposition: rendering, escaping, parse-back, quantiles."""

import math

import pytest

from repro.obs.export import (
    counter_exposition_name,
    escape_label_value,
    format_le,
    format_value,
    parse_prometheus_text,
    quantile_from_buckets,
    render_prometheus,
    sanitize_metric_name,
)
from repro.obs.metrics import DEFAULT_BUCKETS, Exemplar, MetricsRegistry, describe


@pytest.fixture
def registry():
    fresh = MetricsRegistry()
    fresh.counter("xsdgen.schemas_generated").inc(7)
    fresh.counter("serve.requests_total", endpoint="validate").inc(3)
    fresh.counter("serve.requests_total", endpoint="generate").inc(1)
    fresh.gauge("serve.queue_depth").set(2)
    hist = fresh.histogram("serve.request_ms", endpoint="validate")
    for value in (0.2, 0.8, 3.0, 40.0, 20000.0):
        hist.observe(value)
    return fresh


class TestNameSanitization:
    def test_dots_become_underscores(self):
        assert sanitize_metric_name("serve.request_ms") == "serve_request_ms"

    def test_already_valid_names_pass_through(self):
        assert sanitize_metric_name("up_time:total") == "up_time:total"

    def test_leading_digit_gets_prefixed(self):
        assert sanitize_metric_name("2xx.count") == "_2xx_count"

    def test_counters_gain_the_total_suffix(self):
        assert counter_exposition_name("serve.model_cache_hits") == (
            "serve_model_cache_hits_total"
        )

    def test_counters_already_suffixed_pass_through(self):
        assert counter_exposition_name("serve.requests_total") == (
            "serve_requests_total"
        )


class TestRendering:
    def test_help_and_type_lines_precede_samples(self, registry):
        text = render_prometheus(registry)
        lines = text.splitlines()
        type_index = lines.index("# TYPE serve_requests_total counter")
        help_index = next(
            i for i, line in enumerate(lines)
            if line.startswith("# HELP serve_requests_total ")
        )
        first_sample = next(
            i for i, line in enumerate(lines)
            if line.startswith("serve_requests_total{")
        )
        assert help_index < type_index < first_sample

    def test_help_uses_registered_description(self, registry):
        describe("export_test.described_widgets", "Widgets seen by the export test.")
        registry.counter("export_test.described_widgets").inc()
        text = render_prometheus(registry)
        assert (
            "# HELP export_test_described_widgets_total "
            "Widgets seen by the export test." in text
        )

    def test_help_falls_back_to_generic_text(self, registry):
        text = render_prometheus(registry)
        assert (
            "# HELP xsdgen_schemas_generated_total "
            "repro metric xsdgen.schemas_generated (counter)" in text
        )

    def test_unsuffixed_counters_expose_as_total(self, registry):
        registry.counter("serve.model_cache_hits").inc(2)
        families = parse_prometheus_text(render_prometheus(registry))
        assert families["serve_model_cache_hits_total"].type == "counter"
        assert "serve_model_cache_hits" not in families

    def test_histogram_families_have_bucket_sum_count(self, registry):
        text = render_prometheus(registry)
        assert "# TYPE serve_request_ms histogram" in text
        assert 'serve_request_ms_bucket{endpoint="validate",le="+Inf"} 5' in text
        assert 'serve_request_ms_count{endpoint="validate"} 5' in text
        assert 'serve_request_ms_sum{endpoint="validate"}' in text

    def test_bucket_series_is_cumulative_and_complete(self, registry):
        families = parse_prometheus_text(render_prometheus(registry))
        buckets = families["serve_request_ms"].buckets({"endpoint": "validate"})
        counts = [count for _, count in buckets]
        assert counts == sorted(counts)
        assert len(buckets) == len(DEFAULT_BUCKETS) + 1
        assert math.isinf(buckets[-1][0])
        assert buckets[-1][1] == 5

    def test_deterministic_output(self, registry):
        assert render_prometheus(registry) == render_prometheus(registry)

    def test_empty_registry_renders_empty_payload(self):
        assert parse_prometheus_text(render_prometheus(MetricsRegistry())) == {}

    def test_ends_with_single_newline(self, registry):
        text = render_prometheus(registry)
        assert text.endswith("\n") and not text.endswith("\n\n")


class TestEscaping:
    def test_label_values_escape_per_spec(self):
        assert escape_label_value('a"b\\c\nd') == 'a\\"b\\\\c\\nd'

    def test_escaped_labels_round_trip_through_the_parser(self):
        registry = MetricsRegistry()
        nasty = 'path="/x\\y",\nend'
        registry.counter("hits", where=nasty).inc()
        families = parse_prometheus_text(render_prometheus(registry))
        [(name, labels, value)] = families["hits_total"].samples
        assert labels == {"where": nasty}
        assert value == 1

    def test_registry_render_prometheus_delegates(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        assert registry.render_prometheus() == render_prometheus(registry)


class TestValueFormatting:
    def test_integers_stay_integers(self):
        assert format_value(3) == "3"
        assert format_value(3.0) == "3"

    def test_infinities_spelled_out(self):
        assert format_value(float("inf")) == "+Inf"
        assert format_le(float("inf")) == "+Inf"

    def test_le_values_are_compact(self):
        assert format_le(0.25) == "0.25"
        assert format_le(10.0) == "10"


class TestParser:
    def test_parse_back_reconstructs_families(self, registry):
        families = parse_prometheus_text(render_prometheus(registry))
        assert families["serve_requests_total"].type == "counter"
        assert families["serve_queue_depth"].type == "gauge"
        assert families["serve_request_ms"].type == "histogram"
        assert sum(families["serve_requests_total"].values()) == 4

    def test_rejects_non_cumulative_buckets(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="1"} 5\n'
            'h_bucket{le="2"} 3\n'
            'h_bucket{le="+Inf"} 5\n'
        )
        with pytest.raises(ValueError, match="not cumulative"):
            parse_prometheus_text(text)

    def test_rejects_unclosed_bucket_series(self):
        text = "# TYPE h histogram\n" 'h_bucket{le="1"} 5\n'
        with pytest.raises(ValueError, match="not closed"):
            parse_prometheus_text(text)

    def test_rejects_count_bucket_mismatch(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="+Inf"} 5\n'
            "h_count 4\n"
        )
        with pytest.raises(ValueError, match="_count"):
            parse_prometheus_text(text)

    def test_rejects_garbage_lines(self):
        with pytest.raises(ValueError, match="unparsable"):
            parse_prometheus_text("this is not exposition format\n")

    def test_untyped_samples_are_tolerated(self):
        families = parse_prometheus_text("free_floating 12\n")
        assert families["free_floating"].type == "untyped"
        assert families["free_floating"].values() == [12.0]


class TestExemplars:
    def test_traced_observation_renders_openmetrics_exemplar(self, registry):
        hist = registry.histogram("serve.request_ms", endpoint="validate")
        hist.observe(0.3, Exemplar("a" * 32, "req000abc0001", 0.3, ts=1700000000.5))
        text = render_prometheus(registry, openmetrics=True)
        assert (
            'serve_request_ms_bucket{endpoint="validate",le="0.5"} 2 '
            f'# {{trace_id="{"a" * 32}",request_id="req000abc0001"}} '
            "0.3 1700000000.5" in text
        )

    def test_classic_rendering_never_emits_exemplars(self, registry):
        # The 0.0.4 text-format parser rejects exemplar trailers, so the
        # default rendering must strip them even for traced observations.
        hist = registry.histogram("serve.request_ms", endpoint="validate")
        hist.observe(0.3, Exemplar("a" * 32, "req000abc0001", 0.3))
        text = render_prometheus(registry)
        assert " # {" not in text
        assert "# EOF" not in text
        assert parse_prometheus_text(text)["serve_request_ms"].exemplars == []

    def test_openmetrics_payload_ends_with_eof(self, registry):
        text = render_prometheus(registry, openmetrics=True)
        assert text.endswith("# EOF\n")
        # The parser tolerates the terminator like any other comment.
        parse_prometheus_text(text)

    def test_openmetrics_counter_family_drops_total_suffix(self, registry):
        text = render_prometheus(registry, openmetrics=True)
        assert "# TYPE serve_requests counter" in text
        assert 'serve_requests_total{endpoint="validate"} 3' in text
        families = parse_prometheus_text(text)
        family = families["serve_requests"]
        assert family.type == "counter"
        assert sum(family.values()) == 4

    def test_exemplars_parse_back_losslessly(self, registry):
        trace_id = "b" * 32
        hist = registry.histogram("serve.request_ms", endpoint="validate")
        hist.observe(7.0, Exemplar(trace_id, "reqdeadbeef99", 7.0, ts=1700000001.25))
        families = parse_prometheus_text(
            render_prometheus(registry, openmetrics=True)
        )
        family = families["serve_request_ms"]
        matching = [
            entry for entry in family.exemplars
            if entry[2].get("trace_id") == trace_id
        ]
        assert len(matching) == 1
        name, labels, exemplar_labels, value, ts = matching[0]
        assert name == "serve_request_ms_bucket"
        assert labels["le"] == "10"
        assert exemplar_labels == {
            "trace_id": trace_id, "request_id": "reqdeadbeef99",
        }
        assert value == 7.0
        assert ts == 1700000001.25

    def test_exemplar_timestamp_is_optional_on_parse(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="+Inf"} 1 # {trace_id="c"} 0.5\n'
            "h_count 1\n"
        )
        families = parse_prometheus_text(text)
        [(_, _, exemplar_labels, value, ts)] = families["h"].exemplars
        assert exemplar_labels == {"trace_id": "c"}
        assert value == 0.5 and ts is None

    def test_untraced_buckets_carry_no_exemplar(self, registry):
        families = parse_prometheus_text(render_prometheus(registry))
        assert families["serve_request_ms"].exemplars == []

    def test_bucket_validation_ignores_exemplars(self, registry):
        hist = registry.histogram("serve.request_ms", endpoint="validate")
        hist.observe(50000.0, Exemplar("d" * 32, "reqoverflow01", 50000.0))
        # +Inf overflow bucket exemplar must not break cumulative checks.
        parse_prometheus_text(render_prometheus(registry, openmetrics=True))

    def test_label_value_containing_exemplar_syntax_is_plain_data(self):
        # A label value holding '} ' followed by '# {' must neither end
        # the label block early nor be mis-read as a phantom exemplar.
        registry = MetricsRegistry()
        nasty = 'prefix} # {trace_id="zzz"} 9 suffix'
        registry.counter("hits", path=nasty).inc(3)
        for openmetrics in (False, True):
            families = parse_prometheus_text(
                render_prometheus(registry, openmetrics=openmetrics)
            )
            family = families["hits" if openmetrics else "hits_total"]
            [(_, labels, value)] = family.samples
            assert labels == {"path": nasty}
            assert value == 3
            assert family.exemplars == []

    def test_exemplar_after_braced_label_value_still_parses(self):
        # '} ' and '#' inside a label value, then a real exemplar.
        trace = "e" * 32
        text = (
            "# TYPE h histogram\n"
            f'h_bucket{{path="a}}b#c",le="+Inf"}} 1 '
            f'# {{trace_id="{trace}"}} 0.5\n'
            "h_count 1\n"
        )
        families = parse_prometheus_text(text)
        [(name, labels, exemplar_labels, value, ts)] = families["h"].exemplars
        assert labels["path"] == "a}b#c"
        assert exemplar_labels == {"trace_id": "e" * 32}
        assert value == 0.5 and ts is None


class TestQuantileFromBuckets:
    def test_empty_series_is_zero(self):
        assert quantile_from_buckets([], 99.0) == 0.0

    def test_single_bucket_interpolates_inside_it(self):
        buckets = [(1.0, 0), (2.0, 10), (float("inf"), 10)]
        estimate = quantile_from_buckets(buckets, 50.0)
        assert 1.0 <= estimate <= 2.0

    def test_overflow_bucket_clamps_to_last_finite_bound(self):
        buckets = [(1.0, 0), (float("inf"), 10)]
        assert quantile_from_buckets(buckets, 99.0) == 1.0

    def test_matches_histogram_side_estimate(self):
        from repro.obs.metrics import Histogram

        hist = Histogram("h")
        for value in (0.3, 0.7, 2.0, 8.0, 30.0, 70.0, 200.0, 900.0):
            hist.observe(value)
        scraped = quantile_from_buckets(hist.cumulative_buckets(), 90.0)
        native = hist.quantile(90.0)
        # Same buckets, same interpolation; the native side additionally
        # clamps to observed min/max.
        assert scraped == pytest.approx(native, rel=0.35)
