"""Unit and property tests for multiplicities."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.uml.multiplicity import MANY, ONE, ONE_OR_MORE, OPTIONAL, Multiplicity


class TestConstruction:
    def test_defaults_to_exactly_one(self):
        assert Multiplicity() == Multiplicity(1, 1)

    def test_negative_lower_rejected(self):
        with pytest.raises(ValueError):
            Multiplicity(-1, 1)

    def test_upper_below_lower_rejected(self):
        with pytest.raises(ValueError):
            Multiplicity(2, 1)

    def test_unbounded_upper(self):
        assert Multiplicity(0, None).is_unbounded


class TestParse:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("1", Multiplicity(1, 1)),
            ("0..1", Multiplicity(0, 1)),
            ("0..*", Multiplicity(0, None)),
            ("*", Multiplicity(0, None)),
            ("1..*", Multiplicity(1, None)),
            ("2..5", Multiplicity(2, 5)),
            (" 0..1 ", Multiplicity(0, 1)),
        ],
    )
    def test_parse(self, text, expected):
        assert Multiplicity.parse(text) == expected

    def test_parse_empty_raises(self):
        with pytest.raises(ValueError):
            Multiplicity.parse("")

    def test_parse_garbage_raises(self):
        with pytest.raises(ValueError):
            Multiplicity.parse("lots")


class TestPredicates:
    def test_optional(self):
        assert OPTIONAL.is_optional
        assert not ONE.is_optional

    def test_single(self):
        assert ONE.is_single
        assert OPTIONAL.is_single
        assert not MANY.is_single

    @pytest.mark.parametrize(
        "mult,count,expected",
        [
            (ONE, 1, True),
            (ONE, 0, False),
            (ONE, 2, False),
            (OPTIONAL, 0, True),
            (MANY, 100, True),
            (ONE_OR_MORE, 0, False),
            (Multiplicity(2, 4), 3, True),
            (Multiplicity(2, 4), 5, False),
        ],
    )
    def test_contains(self, mult, count, expected):
        assert mult.contains(count) is expected


class TestRestriction:
    def test_equal_is_restriction(self):
        assert OPTIONAL.is_restriction_of(OPTIONAL)

    def test_narrowing_is_restriction(self):
        assert ONE.is_restriction_of(OPTIONAL)
        assert Multiplicity(1, 3).is_restriction_of(Multiplicity(0, None))

    def test_widening_is_not_restriction(self):
        assert not OPTIONAL.is_restriction_of(ONE)
        assert not MANY.is_restriction_of(OPTIONAL)

    def test_unbounded_not_restriction_of_bounded(self):
        assert not ONE_OR_MORE.is_restriction_of(ONE)


class TestIntersect:
    def test_overlap(self):
        assert Multiplicity(0, 3).intersect(Multiplicity(2, 5)) == Multiplicity(2, 3)

    def test_disjoint(self):
        assert Multiplicity(0, 1).intersect(Multiplicity(3, 4)) is None

    def test_unbounded(self):
        assert MANY.intersect(ONE_OR_MORE) == ONE_OR_MORE


class TestXsdRendering:
    def test_min_occurs(self):
        assert OPTIONAL.min_occurs == "0"

    def test_max_occurs_unbounded(self):
        assert MANY.max_occurs == "unbounded"

    def test_str_forms(self):
        assert str(ONE) == "1"
        assert str(OPTIONAL) == "0..1"
        assert str(MANY) == "0..*"
        assert str(Multiplicity(2, 2)) == "2"


_mults = st.builds(
    lambda lower, extra: Multiplicity(lower, None if extra is None else lower + extra),
    st.integers(0, 5),
    st.one_of(st.none(), st.integers(0, 5)),
)


class TestProperties:
    @given(_mults)
    def test_parse_str_round_trip(self, mult):
        assert Multiplicity.parse(str(mult)) == mult

    @given(_mults, _mults, st.integers(0, 12))
    def test_restriction_implies_containment(self, a, b, count):
        if a.is_restriction_of(b) and a.contains(count):
            assert b.contains(count)

    @given(_mults, _mults, st.integers(0, 12))
    def test_intersection_is_conjunction(self, a, b, count):
        overlap = a.intersect(b)
        both = a.contains(count) and b.contains(count)
        if overlap is None:
            assert not both
        else:
            assert overlap.contains(count) == both

    @given(_mults)
    def test_restriction_is_reflexive(self, mult):
        assert mult.is_restriction_of(mult)
