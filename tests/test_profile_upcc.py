"""The UPCC profile must match the paper's Figure 3 exactly."""

import pytest

from repro.profile import (
    COMMON_STEREOTYPES,
    DATATYPE_STEREOTYPES,
    MANAGEMENT_STEREOTYPES,
    UPCC,
    build_upcc_profile,
)
from repro.uml.association import AggregationKind
from repro.uml.classifier import Class, DataType, Enumeration, PrimitiveType
from repro.uml.dependency import Dependency
from repro.uml.elements import NamedElement
from repro.uml.package import Package
from repro.uml.property import Property


class TestFigure3Inventory:
    def test_management_package_has_eight_libraries(self):
        assert sorted(UPCC.stereotype_names("Management")) == [
            "BIELibrary", "BusinessLibrary", "CCLibrary", "CDTLibrary",
            "DOCLibrary", "ENUMLibrary", "PRIMLibrary", "QDTLibrary",
        ]

    def test_datatypes_package_has_six(self):
        assert sorted(UPCC.stereotype_names("DataTypes")) == [
            "CDT", "CON", "ENUM", "PRIM", "QDT", "SUP",
        ]

    def test_common_package_has_nine(self):
        assert sorted(UPCC.stereotype_names("Common")) == [
            "ABIE", "ACC", "ASBIE", "ASCC", "BBIE", "BCC", "BIE", "CC", "basedOn",
        ]

    def test_total_is_twenty_three(self):
        assert len(UPCC.stereotype_names()) == 23

    def test_constant_tuples_match_packages(self):
        assert sorted(MANAGEMENT_STEREOTYPES) == sorted(UPCC.stereotype_names("Management"))
        assert sorted(DATATYPE_STEREOTYPES) == sorted(UPCC.stereotype_names("DataTypes"))
        assert sorted(COMMON_STEREOTYPES) == sorted(UPCC.stereotype_names("Common"))

    def test_builder_returns_equivalent_fresh_profile(self):
        fresh = build_upcc_profile()
        assert fresh.stereotype_names() == UPCC.stereotype_names()


class TestMetaclassConstraints:
    @pytest.mark.parametrize("library", MANAGEMENT_STEREOTYPES)
    def test_libraries_extend_package(self, library):
        assert UPCC.get(library).extends(Package("p"))
        assert not UPCC.get(library).extends(Class("c"))

    @pytest.mark.parametrize(
        "stereotype,element",
        [
            ("ACC", Class("x")),
            ("ABIE", Class("x")),
            ("BCC", Property("x")),
            ("BBIE", Property("x")),
            ("CON", Property("x")),
            ("SUP", Property("x")),
            ("CDT", DataType("x")),
            ("QDT", DataType("x")),
            ("PRIM", PrimitiveType("x")),
            ("ENUM", Enumeration("x")),
            ("basedOn", Dependency(NamedElement("a"), NamedElement("b"))),
        ],
    )
    def test_concrete_extensions(self, stereotype, element):
        assert UPCC.get(stereotype).extends(element)

    def test_acc_does_not_extend_property(self):
        assert not UPCC.get("ACC").extends(Property("x"))

    def test_bcc_does_not_extend_class(self):
        assert not UPCC.get("BCC").extends(Class("x"))

    def test_abstract_parents(self):
        assert UPCC.get("CC").abstract
        assert UPCC.get("BIE").abstract
        for name in ("ACC", "BCC", "ASCC", "ABIE", "BBIE", "ASBIE"):
            assert not UPCC.get(name).abstract


class TestTaggedValueDefinitions:
    def test_libraries_require_base_urn(self):
        tag = UPCC.get("BIELibrary").tag("baseURN")
        assert tag is not None and tag.required

    def test_libraries_offer_namespace_prefix(self):
        assert UPCC.get("BIELibrary").tag("namespacePrefix") is not None

    def test_annotation_tags_on_abie(self):
        abie = UPCC.get("ABIE")
        assert abie.tag("definition") is not None
        assert abie.tag("version") is not None
        assert abie.tag("businessContext") is not None

    def test_based_on_has_no_tags(self):
        assert UPCC.get("basedOn").tags == ()


class TestApplicationOnRealModel:
    def test_easybiz_model_is_profile_clean(self):
        from repro.catalog.easybiz import build_easybiz_model

        model = build_easybiz_model().model
        assert model.profile_problems() == []

    def test_wrong_placement_detected(self):
        from repro.ccts.model import CctsModel

        model = CctsModel("X")
        package = model.model.add_package("p")
        cls = package.add_class("C")
        cls.apply_stereotype("BCC")  # BCC extends Property, not Class
        problems = model.profile_problems()
        assert any("BCC" in p and "Property" in p for p in problems)

    def test_aggregation_kind_values(self):
        # sanity: the enum the profile semantics rely on
        assert {kind.value for kind in AggregationKind} == {"none", "shared", "composite"}
