"""Metrics registry: instruments, label keys, snapshot determinism."""

import json
import threading

import pytest

from repro.obs.metrics import (
    MetricsRegistry,
    counter,
    get_registry,
    histogram,
    set_registry,
)


@pytest.fixture
def registry():
    """A fresh registry installed as the global one."""
    fresh = MetricsRegistry()
    previous = set_registry(fresh)
    try:
        yield fresh
    finally:
        set_registry(previous)


class TestInstruments:
    def test_counter_accumulates(self, registry):
        registry.counter("xsdgen.schemas_generated").inc()
        registry.counter("xsdgen.schemas_generated").inc(5)
        assert registry.snapshot()["xsdgen.schemas_generated"] == 6

    def test_gauge_moves_both_ways(self, registry):
        gauge = registry.gauge("memo.size")
        gauge.set(10)
        gauge.inc(2)
        gauge.dec()
        assert registry.snapshot()["memo.size"] == 11

    def test_histogram_aggregates(self, registry):
        hist = registry.histogram("rule_ms")
        for value in [1.0, 3.0, 2.0]:
            hist.observe(value)
        aggregate = registry.snapshot()["rule_ms"]
        assert aggregate["count"] == 3
        assert aggregate["sum"] == 6.0
        assert aggregate["min"] == 1.0
        assert aggregate["max"] == 3.0
        assert aggregate["mean"] == 2.0
        assert 1.0 <= aggregate["p50"] <= aggregate["p90"] <= aggregate["p99"] <= 3.0

    def test_histogram_quantiles_single_observation(self, registry):
        hist = registry.histogram("one_ms")
        hist.observe(7.0)
        aggregate = hist.to_dict()
        assert aggregate["p50"] == aggregate["p99"] == 7.0

    def test_histogram_cumulative_buckets(self, registry):
        hist = registry.histogram("bucketed_ms")
        for value in [0.3, 0.3, 4.0, 99999.0]:
            hist.observe(value)
        pairs = hist.cumulative_buckets()
        assert pairs[-1] == (float("inf"), 4)
        counts = [count for _, count in pairs]
        assert counts == sorted(counts)  # cumulative => non-decreasing
        by_bound = dict(pairs)
        assert by_bound[0.5] == 2
        assert by_bound[5.0] == 3
        assert by_bound[10000.0] == 3  # the 99999 lands in +Inf only

    def test_histogram_quantile_skewed_tail(self, registry):
        hist = registry.histogram("skew_ms")
        for _ in range(99):
            hist.observe(1.0)
        hist.observe(900.0)
        assert hist.quantile(50.0) <= 2.5
        assert hist.quantile(99.9) > 100.0

    def test_histogram_time_context_manager(self, registry):
        with registry.histogram("timed_ms").time():
            pass
        aggregate = registry.snapshot()["timed_ms"]
        assert aggregate["count"] == 1
        assert aggregate["sum"] >= 0.0

    def test_labels_key_instruments_separately(self, registry):
        registry.counter("validation.findings", severity="error").inc()
        registry.counter("validation.findings", severity="warning").inc(2)
        snapshot = registry.snapshot()
        assert snapshot["validation.findings{severity=error}"] == 1
        assert snapshot["validation.findings{severity=warning}"] == 2

    def test_label_order_is_canonical(self, registry):
        a = registry.counter("m", b=1, a=2)
        b = registry.counter("m", a=2, b=1)
        assert a is b
        assert a.name == "m{a=2,b=1}"


class TestSnapshot:
    def test_snapshot_is_deterministic(self, registry):
        registry.counter("z").inc()
        registry.counter("a").inc(3)
        registry.histogram("h", rule="R1").observe(1.5)
        first = registry.snapshot()
        second = registry.snapshot()
        assert first == second
        assert list(first) == sorted(first)

    def test_render_json_round_trips(self, registry):
        registry.counter("xsdgen.memo_hits").inc(4)
        data = json.loads(registry.render_json())
        assert data["xsdgen.memo_hits"] == 4

    def test_render_text_lists_every_instrument(self, registry):
        registry.counter("c").inc()
        registry.gauge("g").set(2.5)
        registry.histogram("h").observe(1.0)
        text = registry.render_text()
        assert "c" in text and "g" in text and "count=1" in text

    def test_render_text_empty_registry(self, registry):
        assert registry.render_text() == "(no metrics recorded)"

    def test_reset_clears_everything(self, registry):
        registry.counter("c").inc()
        registry.reset()
        assert registry.snapshot() == {}


class TestGlobalShortcuts:
    def test_shortcuts_hit_the_global_registry(self, registry):
        counter("hits").inc()
        histogram("ms", rule="R").observe(2.0)
        assert get_registry() is registry
        snapshot = registry.snapshot()
        assert snapshot["hits"] == 1
        assert snapshot["ms{rule=R}"]["count"] == 1


class TestLabelEscaping:
    def test_structural_characters_do_not_collide_keys(self, registry):
        # Without escaping these two label sets would render identical keys.
        a = registry.counter("m", path="a=b,c")
        b = registry.counter("m", **{"path": "a", "extra": "b\\,c"})
        assert a is not b
        assert a.name != b.name

    def test_escaping_is_reversible(self):
        from repro.obs.metrics import escape_label_value

        nasty = 'a=b,{c}\\d\ne\rf'
        escaped = escape_label_value(nasty)
        assert "\n" not in escaped and "\r" not in escaped
        unescaped = (
            escaped.replace("\\\\", "\x00")
            .replace("\\=", "=").replace("\\,", ",")
            .replace("\\{", "{").replace("\\}", "}")
            .replace("\\n", "\n").replace("\\r", "\r")
            .replace("\x00", "\\")
        )
        assert unescaped == nasty

    def test_plain_values_pass_through(self):
        from repro.obs.metrics import escape_label_value

        assert escape_label_value("UPCC-P01") == "UPCC-P01"


class TestKindCollisions:
    def test_counter_then_gauge_same_name_raises(self, registry):
        registry.counter("serve.depth").inc()
        with pytest.raises(ValueError, match="one name, one kind"):
            registry.gauge("serve.depth")

    def test_histogram_then_counter_same_name_raises(self, registry):
        registry.histogram("req_ms").observe(1.0)
        with pytest.raises(ValueError, match="one name, one kind"):
            registry.counter("req_ms")

    def test_snapshot_backstops_hand_assembled_collisions(self, registry):
        from repro.obs.metrics import Gauge

        registry.counter("dup").inc()
        registry._gauges["dup"] = Gauge("dup")
        with pytest.raises(ValueError, match="refusing to shadow"):
            registry.snapshot()


class TestPerInstrumentLocks:
    def test_instruments_do_not_share_the_registry_lock(self, registry):
        c = registry.counter("a")
        g = registry.gauge("b")
        h = registry.histogram("c")
        locks = {id(c._lock), id(g._lock), id(h._lock), id(registry._lock)}
        assert len(locks) == 4

    def test_increment_does_not_need_the_registry_lock(self, registry):
        instrument = registry.counter("free")
        with registry._lock:  # would deadlock if inc() took the registry lock
            instrument.inc()
        assert instrument.value == 1


class TestThreadSafety:
    def test_concurrent_increments_do_not_lose_counts(self, registry):
        instrument = registry.counter("contended")

        def work():
            for _ in range(1000):
                instrument.inc()

        threads = [threading.Thread(target=work) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert registry.snapshot()["contended"] == 8000


class TestExemplars:
    def test_bucket_keeps_most_recent_exemplar(self, registry):
        from repro.obs.metrics import Exemplar

        hist = registry.histogram("serve.request_ms")
        hist.observe(0.3, Exemplar("t1" * 16, "req1", 0.3))
        hist.observe(0.4, Exemplar("t2" * 16, "req2", 0.4))
        by_bound = dict(hist.bucket_exemplars())
        assert by_bound[0.5].request_id == "req2"

    def test_untraced_observation_leaves_exemplar_alone(self, registry):
        from repro.obs.metrics import Exemplar

        hist = registry.histogram("serve.request_ms")
        hist.observe(0.3, Exemplar("t1" * 16, "req1", 0.3))
        hist.observe(0.4)
        by_bound = dict(hist.bucket_exemplars())
        assert by_bound[0.5].request_id == "req1"

    def test_exemplars_land_in_value_bucket(self, registry):
        from repro.obs.metrics import DEFAULT_BUCKETS, Exemplar

        hist = registry.histogram("serve.request_ms")
        hist.observe(99999.0, Exemplar("t3" * 16, "req3", 99999.0))
        pairs = hist.bucket_exemplars()
        assert pairs[-1][0] == float("inf")
        assert pairs[-1][1].request_id == "req3"
        assert len(pairs) == len(DEFAULT_BUCKETS) + 1

    def test_exemplar_to_dict_is_json_ready(self):
        from repro.obs.metrics import Exemplar

        payload = Exemplar("ab" * 16, "reqx", 1.25, ts=1700000000.0).to_dict()
        assert json.loads(json.dumps(payload)) == {
            "trace_id": "ab" * 16, "request_id": "reqx",
            "value": 1.25, "ts": 1700000000.0,
        }


class TestDescriptions:
    def test_describe_and_lookup(self):
        from repro.obs.metrics import describe, description_of

        describe("metrics_test.example", "An example metric.")
        assert description_of("metrics_test.example") == "An example metric."
        assert description_of("metrics_test.never_described") is None
