"""Metrics registry: instruments, label keys, snapshot determinism."""

import json
import threading

import pytest

from repro.obs.metrics import (
    MetricsRegistry,
    counter,
    get_registry,
    histogram,
    set_registry,
)


@pytest.fixture
def registry():
    """A fresh registry installed as the global one."""
    fresh = MetricsRegistry()
    previous = set_registry(fresh)
    try:
        yield fresh
    finally:
        set_registry(previous)


class TestInstruments:
    def test_counter_accumulates(self, registry):
        registry.counter("xsdgen.schemas_generated").inc()
        registry.counter("xsdgen.schemas_generated").inc(5)
        assert registry.snapshot()["xsdgen.schemas_generated"] == 6

    def test_gauge_moves_both_ways(self, registry):
        gauge = registry.gauge("memo.size")
        gauge.set(10)
        gauge.inc(2)
        gauge.dec()
        assert registry.snapshot()["memo.size"] == 11

    def test_histogram_aggregates(self, registry):
        hist = registry.histogram("rule_ms")
        for value in [1.0, 3.0, 2.0]:
            hist.observe(value)
        aggregate = registry.snapshot()["rule_ms"]
        assert aggregate == {"count": 3, "sum": 6.0, "min": 1.0, "max": 3.0, "mean": 2.0}

    def test_histogram_time_context_manager(self, registry):
        with registry.histogram("timed_ms").time():
            pass
        aggregate = registry.snapshot()["timed_ms"]
        assert aggregate["count"] == 1
        assert aggregate["sum"] >= 0.0

    def test_labels_key_instruments_separately(self, registry):
        registry.counter("validation.findings", severity="error").inc()
        registry.counter("validation.findings", severity="warning").inc(2)
        snapshot = registry.snapshot()
        assert snapshot["validation.findings{severity=error}"] == 1
        assert snapshot["validation.findings{severity=warning}"] == 2

    def test_label_order_is_canonical(self, registry):
        a = registry.counter("m", b=1, a=2)
        b = registry.counter("m", a=2, b=1)
        assert a is b
        assert a.name == "m{a=2,b=1}"


class TestSnapshot:
    def test_snapshot_is_deterministic(self, registry):
        registry.counter("z").inc()
        registry.counter("a").inc(3)
        registry.histogram("h", rule="R1").observe(1.5)
        first = registry.snapshot()
        second = registry.snapshot()
        assert first == second
        assert list(first) == sorted(first)

    def test_render_json_round_trips(self, registry):
        registry.counter("xsdgen.memo_hits").inc(4)
        data = json.loads(registry.render_json())
        assert data["xsdgen.memo_hits"] == 4

    def test_render_text_lists_every_instrument(self, registry):
        registry.counter("c").inc()
        registry.gauge("g").set(2.5)
        registry.histogram("h").observe(1.0)
        text = registry.render_text()
        assert "c" in text and "g" in text and "count=1" in text

    def test_render_text_empty_registry(self, registry):
        assert registry.render_text() == "(no metrics recorded)"

    def test_reset_clears_everything(self, registry):
        registry.counter("c").inc()
        registry.reset()
        assert registry.snapshot() == {}


class TestGlobalShortcuts:
    def test_shortcuts_hit_the_global_registry(self, registry):
        counter("hits").inc()
        histogram("ms", rule="R").observe(2.0)
        assert get_registry() is registry
        snapshot = registry.snapshot()
        assert snapshot["hits"] == 1
        assert snapshot["ms{rule=R}"]["count"] == 1


class TestThreadSafety:
    def test_concurrent_increments_do_not_lose_counts(self, registry):
        instrument = registry.counter("contended")

        def work():
            for _ in range(1000):
                instrument.inc()

        threads = [threading.Thread(target=work) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert registry.snapshot()["contended"] == 8000
