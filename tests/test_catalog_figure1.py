"""Figure 1 / sections 2.1-2.2: the derived element sets, verbatim."""

from repro.catalog.figure1 import (
    PAPER_PERSON_SET,
    PAPER_US_PERSON_SET,
    build_figure1_model,
)
from repro.validation import validate_model


class TestPaperElementSets:
    def test_person_acc_set_matches_section_21(self, figure1):
        assert figure1.person.component_set() == PAPER_PERSON_SET

    def test_us_person_abie_set_matches_section_22(self, figure1):
        assert figure1.us_person.component_set() == PAPER_US_PERSON_SET

    def test_paper_constants_are_the_published_lists(self):
        assert PAPER_PERSON_SET[0] == "Person (ACC)"
        assert PAPER_PERSON_SET[-1] == "Person.Work.Address (ASCC)"
        assert PAPER_US_PERSON_SET[-1] == "US_Person.US_Work.US_Address (ASBIE)"


class TestRestriction:
    def test_us_address_misses_country(self, figure1):
        # "Please note that US_Address is missing the attribute Country."
        assert [b.name for b in figure1.address.bccs] == ["Country", "PostalCode", "Street"]
        assert [b.name for b in figure1.us_address.bbies] == ["PostalCode", "Street"]

    def test_based_on_dependencies_drawn(self, figure1):
        assert figure1.us_person.based_on.element is figure1.person.element
        assert figure1.us_address.based_on.element is figure1.address.element

    def test_asbies_are_based_on_asccs(self, figure1):
        private = figure1.us_person.asbie("US_Private")
        assert private.based_on.element is figure1.person.ascc("Private").element

    def test_aggregation_kinds_mirror_core(self, figure1):
        from repro.uml.association import AggregationKind

        assert figure1.us_person.asbie("US_Private").aggregation is AggregationKind.COMPOSITE
        assert figure1.us_person.asbie("US_Work").aggregation is AggregationKind.SHARED


class TestModelHealth:
    def test_model_validates_clean(self, figure1):
        report = validate_model(figure1.model)
        assert report.ok

    def test_builds_are_independent(self):
        first = build_figure1_model()
        second = build_figure1_model()
        assert first.model.model is not second.model.model
        first.person.add_bcc("Mutation", first.cdt_library.cdt("Text"))
        assert len(second.person.bccs) == 2

    def test_dens(self, figure1):
        assert figure1.us_person.den() == "US_ Person. Details"
        assert figure1.person.bcc("DateofBirth").den() == "Person. Dateof Birth. Date"
