"""Unit tests for the schema-version compatibility checker."""

import pytest

from repro.catalog.easybiz import build_easybiz_model
from repro.uml.multiplicity import Multiplicity
from repro.xsd.compat import check_compatibility
from repro.xsdgen import SchemaGenerator


def _generate(model_wrapper):
    result = SchemaGenerator(model_wrapper.model).generate(
        model_wrapper.doc_library, root="HoardingPermit"
    )
    return result.schema_set()


@pytest.fixture
def baseline():
    return _generate(build_easybiz_model())


class TestIdentity:
    def test_same_model_is_compatible_both_ways(self, baseline):
        other = _generate(build_easybiz_model())
        report = check_compatibility(baseline, other)
        assert report.changes == []
        assert report.is_backward_compatible


class TestCompatibleEvolution:
    def test_new_optional_bbie(self, baseline):
        evolved = build_easybiz_model()
        permit_acc = evolved.model.acc("HoardingPermit")
        text = evolved.cdt_library.cdt("Text")
        permit_acc.add_bcc("Remark", text, "0..1")
        evolved.hoarding_permit.add_bbie("Remark", text, "0..1")
        report = check_compatibility(baseline, _generate(evolved))
        assert report.is_backward_compatible
        assert any("optional element added" in str(c) for c in report.compatible)

    def test_new_enumeration_value(self, baseline):
        evolved = build_easybiz_model()
        evolved.enum_library.enumeration("CountryType_Code").add_literal("NZL", "New Zealand")
        report = check_compatibility(baseline, _generate(evolved))
        assert report.is_backward_compatible
        assert any("'NZL' added" in str(c) for c in report.compatible)

    def test_relaxed_multiplicity(self, baseline):
        evolved = build_easybiz_model()
        # Relax core and business layers together (restriction must hold).
        permit_acc = evolved.model.acc("HoardingPermit")
        ascc = next(a for a in permit_acc.asccs if a.target.name == "Registration")
        ascc.element.target.multiplicity = Multiplicity(0, 1)
        registration = next(
            a for a in evolved.hoarding_permit.asbies if a.target.name == "Registration"
        )
        registration.element.target.multiplicity = Multiplicity(0, 1)
        report = check_compatibility(baseline, _generate(evolved))
        assert report.is_backward_compatible
        assert any("minOccurs lowered" in str(c) for c in report.compatible)

    def test_new_abie_type(self, baseline):
        evolved = build_easybiz_model()
        from repro.ccts.derivation import derive_abie

        party_acc = evolved.model.acc("Party")
        party = derive_abie(evolved.common_aggregates, party_acc)
        party.include("Description", "0..1")
        # Wire it so the generator reaches it.
        evolved.hoarding_permit.add_asbie("Related", party.abie, "0..1")
        report = check_compatibility(baseline, _generate(evolved))
        assert report.is_backward_compatible


class TestBreakingEvolution:
    def test_removed_element(self, baseline):
        evolved = build_easybiz_model()
        signature = evolved.common_aggregates.abie("Signature")
        signature.element.attributes.remove(signature.bbie("PersonName").element)
        report = check_compatibility(baseline, _generate(evolved))
        assert not report.is_backward_compatible
        assert any("element removed" in str(c) for c in report.breaking)

    def test_tightened_min_occurs(self, baseline):
        evolved = build_easybiz_model()
        closure = evolved.hoarding_permit.bbie("ClosureReason")
        closure.element.multiplicity = Multiplicity(1, 1)
        report = check_compatibility(baseline, _generate(evolved))
        assert any("minOccurs raised" in str(c) for c in report.breaking)

    def test_narrowed_max_occurs(self, baseline):
        evolved = build_easybiz_model()
        included = next(
            a for a in evolved.hoarding_permit.asbies if a.target.name == "Attachment"
        )
        included.element.target.multiplicity = Multiplicity(0, 3)
        report = check_compatibility(baseline, _generate(evolved))
        assert any("maxOccurs narrowed" in str(c) for c in report.breaking)

    def test_removed_enumeration_value(self, baseline):
        evolved = build_easybiz_model()
        country = evolved.enum_library.enumeration("CountryType_Code")
        country.element.literals = [l for l in country.element.literals if l.name != "AUT"]
        report = check_compatibility(baseline, _generate(evolved))
        assert any("'AUT' removed" in str(c) for c in report.breaking)

    def test_attribute_became_required(self, baseline):
        evolved = build_easybiz_model()
        code = evolved.cdt_library.cdt("Code")
        code.supplementary("LanguageIdentifier").element.multiplicity = Multiplicity(1, 1)
        report = check_compatibility(baseline, _generate(evolved))
        assert any("became required" in str(c) for c in report.breaking)

    def test_retyped_element(self, baseline):
        evolved = build_easybiz_model()
        # Retype in both layers so the model stays a valid restriction.
        code = evolved.cdt_library.cdt("Code").element
        evolved.model.acc("HoardingPermit").bcc("ClosureReason").element.type = code
        evolved.hoarding_permit.bbie("ClosureReason").element.type = code
        report = check_compatibility(baseline, _generate(evolved))
        assert any("retyped" in str(c) for c in report.breaking)

    def test_removed_namespace(self, baseline):
        from repro.xsd.validator import SchemaSet

        partial = SchemaSet(
            [baseline.schema_for(ns) for ns in baseline.namespaces if "LocalLaw" not in ns]
        )
        report = check_compatibility(baseline, partial)
        assert any("namespace removed" in str(c) for c in report.breaking)

    def test_direction_matters(self, baseline):
        evolved = build_easybiz_model()
        permit_acc = evolved.model.acc("HoardingPermit")
        text = evolved.cdt_library.cdt("Text")
        permit_acc.add_bcc("Remark", text, "0..1")
        evolved.hoarding_permit.add_bbie("Remark", text, "0..1")
        new_set = _generate(evolved)
        assert check_compatibility(baseline, new_set).is_backward_compatible
        # Reversed: the old set lacks the element the new one may produce --
        # still backward compatible for old instances, and the checker sees
        # the removal as breaking in that direction.
        reverse = check_compatibility(new_set, baseline)
        assert any("element removed" in str(c) for c in reverse.breaking)
