"""Round-trip tests for the XSD writer and parser."""

from repro.xmlutil.qname import QName
from repro.xsd.components import (
    Annotation,
    AttributeDecl,
    AttributeUse,
    ChoiceGroup,
    ComplexType,
    ElementDecl,
    Facet,
    ImportDecl,
    Schema,
    SequenceGroup,
    SimpleContent,
    SimpleType,
)
from repro.xsd.components import xsd
from repro.xsd.parser import parse_schema
from repro.xsd.writer import schema_to_string


def _sample_schema() -> Schema:
    schema = Schema(
        "urn:t",
        prefixes={"t": "urn:t", "cdt": "urn:cdt", "ccts": "urn:ccts"},
        version="0.9",
    )
    schema.imports.append(ImportDecl("urn:cdt", "../f/cdt.xsd"))
    schema.items.append(
        SimpleType(
            "CodeListType",
            base=xsd("token"),
            facets=[Facet("enumeration", "A"), Facet("enumeration", "B")],
        )
    )
    schema.items.append(
        ComplexType(
            "CodeType",
            simple_content=SimpleContent(
                base=xsd("string"),
                derivation="extension",
                attributes=[
                    AttributeDecl("ListName", xsd("string"), AttributeUse.REQUIRED),
                    AttributeDecl("Language", xsd("string"), AttributeUse.OPTIONAL),
                ],
            ),
        )
    )
    schema.items.append(
        ComplexType(
            "ThingType",
            particle=SequenceGroup(
                [
                    ElementDecl(name="Kind", type=QName("urn:t", "CodeType"), min_occurs=0),
                    ElementDecl(name="Other", type=QName("urn:cdt", "TextType"), max_occurs=None),
                    ElementDecl(ref=QName("urn:t", "Shared"), min_occurs=0),
                    ChoiceGroup(
                        [ElementDecl(name="A", type=xsd("string")), ElementDecl(name="B", type=xsd("integer"))],
                        min_occurs=0,
                        max_occurs=3,
                    ),
                ]
            ),
            annotation=Annotation([("AcronymCode", "ABIE"), ("Definition", "a thing")]),
        )
    )
    schema.items.append(ElementDecl(name="Shared", type=QName("urn:t", "CodeType")))
    schema.items.append(ElementDecl(name="Thing", type=QName("urn:t", "ThingType")))
    return schema


class TestWriter:
    def test_form_defaults_and_version(self):
        text = schema_to_string(_sample_schema())
        assert 'attributeFormDefault="unqualified"' in text
        assert 'elementFormDefault="qualified"' in text
        assert 'version="0.9"' in text

    def test_occurrence_defaults_omitted(self):
        text = schema_to_string(_sample_schema())
        assert '<xsd:element name="Kind"' not in text  # minOccurs comes first
        assert 'minOccurs="0" name="Kind"' in text
        assert 'maxOccurs="unbounded" name="Other"' in text
        assert 'name="Shared" type="t:CodeType"' in text

    def test_annotation_block(self):
        text = schema_to_string(_sample_schema())
        assert "<xsd:annotation>" in text
        assert "<ccts:AcronymCode>ABIE</ccts:AcronymCode>" in text

    def test_simple_type_facets(self):
        text = schema_to_string(_sample_schema())
        assert '<xsd:restriction base="xsd:token">' in text
        assert '<xsd:enumeration value="A"/>' in text

    def test_missing_prefix_raises(self):
        schema = Schema("urn:t", prefixes={"t": "urn:t"})
        schema.items.append(
            ComplexType("X", particle=SequenceGroup([ElementDecl(name="a", type=QName("urn:unknown", "T"))]))
        )
        import pytest
        from repro.errors import SchemaError

        with pytest.raises(SchemaError):
            schema_to_string(schema)


class TestRoundTrip:
    def test_write_parse_write_identity(self):
        once = schema_to_string(_sample_schema())
        twice = schema_to_string(parse_schema(once))
        assert once == twice

    def test_parse_resolves_qnames(self):
        parsed = parse_schema(schema_to_string(_sample_schema()))
        thing = parsed.complex_type("ThingType")
        first = thing.particle.particles[0]
        assert first.type == QName("urn:t", "CodeType")
        other = thing.particle.particles[1]
        assert other.type == QName("urn:cdt", "TextType")
        assert other.max_occurs is None
        ref = thing.particle.particles[2]
        assert ref.ref == QName("urn:t", "Shared")

    def test_parse_simple_content(self):
        parsed = parse_schema(schema_to_string(_sample_schema()))
        code = parsed.complex_type("CodeType")
        assert code.simple_content.derivation == "extension"
        assert code.simple_content.base == xsd("string")
        uses = {a.name: a.use for a in code.simple_content.attributes}
        assert uses["ListName"] is AttributeUse.REQUIRED

    def test_parse_imports(self):
        parsed = parse_schema(schema_to_string(_sample_schema()))
        assert parsed.imports[0].namespace == "urn:cdt"
        assert parsed.imports[0].schema_location == "../f/cdt.xsd"

    def test_parse_nested_choice(self):
        parsed = parse_schema(schema_to_string(_sample_schema()))
        thing = parsed.complex_type("ThingType")
        choice = thing.particle.particles[3]
        assert isinstance(choice, ChoiceGroup)
        assert choice.min_occurs == 0 and choice.max_occurs == 3

    def test_parse_annotation(self):
        parsed = parse_schema(schema_to_string(_sample_schema()))
        thing = parsed.complex_type("ThingType")
        assert ("Definition", "a thing") in thing.annotation.entries

    def test_generated_easybiz_schemas_round_trip(self, easybiz_result):
        for generated in easybiz_result.schemas.values():
            once = generated.to_string()
            twice = schema_to_string(parse_schema(once))
            assert once == twice
