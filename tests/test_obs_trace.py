"""Tracing core: span nesting, attributes, error capture, sink output."""

import io
import json
import threading

import pytest

from repro.obs.trace import (
    JsonLinesSink,
    LogfmtSink,
    RingBufferSink,
    Tracer,
    get_tracer,
    set_tracer,
    span,
)


@pytest.fixture
def tracer():
    """A fresh enabled tracer installed as the global one."""
    fresh = Tracer(enabled=True)
    previous = set_tracer(fresh)
    try:
        yield fresh
    finally:
        set_tracer(previous)


class TestSpanNesting:
    def test_children_attach_to_parent(self, tracer):
        ring = tracer.add_sink(RingBufferSink())
        with tracer.span("outer") as outer:
            with tracer.span("inner.a"):
                pass
            with tracer.span("inner.b"):
                with tracer.span("leaf"):
                    pass
        assert [child.name for child in outer.children] == ["inner.a", "inner.b"]
        assert outer.children[1].children[0].name == "leaf"
        # Only the root lands in the ring buffer; descendants via the tree.
        assert [root.name for root in ring.roots] == ["outer"]
        assert len(ring.spans()) == 4

    def test_walk_reports_depth(self, tracer):
        with tracer.span("a") as a:
            with tracer.span("b"):
                with tracer.span("c"):
                    pass
        assert [s.name for s, _ in a.walk()] == ["a", "b", "c"]
        assert [d for _, d in a.walk()] == [0, 1, 2]

    def test_attributes_at_open_and_set(self, tracer):
        with tracer.span("work", library="X") as s:
            s.set(schemas=3)
        assert s.attributes == {"library": "X", "schemas": 3}

    def test_duration_is_measured(self, tracer):
        with tracer.span("timed") as s:
            pass
        assert s.finished
        assert s.duration_ms >= 0.0

    def test_threads_get_independent_nesting(self, tracer):
        ring = tracer.add_sink(RingBufferSink())

        def work(name):
            with tracer.span(name):
                pass

        threads = [threading.Thread(target=work, args=(f"t{i}",)) for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert sorted(root.name for root in ring.roots) == ["t0", "t1", "t2", "t3"]
        assert all(root.parent is None for root in ring.roots)


class TestErrorCapture:
    def test_exception_marks_span_error_and_rethrows(self, tracer):
        with pytest.raises(ValueError):
            with tracer.span("failing") as s:
                raise ValueError("boom")
        assert s.status == "error"
        assert s.error == "ValueError: boom"
        assert s.finished

    def test_error_spans_still_reach_sinks(self, tracer):
        ring = tracer.add_sink(RingBufferSink())
        with pytest.raises(RuntimeError):
            with tracer.span("failing"):
                raise RuntimeError("nope")
        assert [root.status for root in ring.roots] == ["error"]


class TestGlobalSpanHelper:
    def test_disabled_tracer_yields_noop(self):
        previous = set_tracer(Tracer(enabled=False))
        try:
            with span("anything", key="value") as s:
                s.set(more=1)  # absorbed, no error
            assert not hasattr(s, "attributes")
        finally:
            set_tracer(previous)

    def test_enabled_tracer_records(self, tracer):
        ring = tracer.add_sink(RingBufferSink())
        with span("recorded", n=1):
            pass
        assert [root.name for root in ring.roots] == ["recorded"]
        assert get_tracer() is tracer


class TestLogfmtSink:
    def test_span_line_shape(self, tracer):
        stream = io.StringIO()
        tracer.add_sink(LogfmtSink(stream))
        with tracer.span("xsdgen.library", library="My Lib"):
            pass
        line = stream.getvalue().strip()
        assert line.startswith("span=xsdgen.library dur_ms=")
        assert "status=ok" in line
        assert 'library="My Lib"' in line  # spaces get quoted

    def test_log_line_shape(self, tracer):
        stream = io.StringIO()
        tracer.add_sink(LogfmtSink(stream))
        tracer.emit_log("repro.xsdgen", "INFO", "generated 6 schemas")
        line = stream.getvalue().strip()
        assert line == 'log=repro.xsdgen level=INFO msg="generated 6 schemas"'


class TestJsonLinesSink:
    def test_one_json_object_per_span_with_parent(self, tracer):
        stream = io.StringIO()
        tracer.add_sink(JsonLinesSink(stream))
        with tracer.span("outer"):
            with tracer.span("inner", n=2):
                pass
        records = [json.loads(line) for line in stream.getvalue().splitlines()]
        assert [r["name"] for r in records] == ["inner", "outer"]  # children end first
        assert records[0]["parent"] == "outer"
        assert records[0]["attributes"] == {"n": 2}
        assert records[1]["parent"] is None
        assert all(r["status"] == "ok" for r in records)

    def test_file_target_appends(self, tracer, tmp_path):
        target = tmp_path / "spans.jsonl"
        tracer.add_sink(JsonLinesSink(target))
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        names = [json.loads(line)["name"] for line in target.read_text().splitlines()]
        assert names == ["a", "b"]


class TestRingBuffer:
    def test_capacity_bounds_roots(self, tracer):
        ring = tracer.add_sink(RingBufferSink(capacity=2))
        for name in ["a", "b", "c"]:
            with tracer.span(name):
                pass
        assert [root.name for root in ring.roots] == ["b", "c"]

    def test_render_tree_indents(self, tracer):
        ring = tracer.add_sink(RingBufferSink())
        with tracer.span("outer", k="v"):
            with tracer.span("inner"):
                pass
        lines = ring.render_tree().splitlines()
        assert lines[0].startswith("outer ")
        assert "k=v" in lines[0]
        assert lines[1].startswith("  inner ")
