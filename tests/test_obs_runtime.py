"""Runtime collector: gauge publication, sampling loop, degradation."""

import time

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.runtime import RuntimeCollector, open_fds, rss_bytes, sample_runtime


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestSamplers:
    def test_rss_is_positive_on_this_platform(self):
        assert rss_bytes() > 0

    def test_open_fds_is_positive_or_sentinel(self):
        assert open_fds() >= -1
        assert open_fds() != 0  # a running interpreter holds fds (or -1)


class TestSampleRuntime:
    def test_publishes_all_gauges(self, registry):
        sample_runtime(registry, started_at=time.monotonic())
        snapshot = registry.snapshot()
        assert snapshot["runtime.rss_bytes"] > 0
        assert snapshot["runtime.threads"] >= 1
        assert "runtime.open_fds" in snapshot
        assert snapshot["runtime.uptime_s"] >= 0.0
        gc_keys = [key for key in snapshot if key.startswith("runtime.gc_collections{")]
        assert len(gc_keys) == 3  # one gauge per GC generation

    def test_without_started_at_skips_uptime(self, registry):
        sample = sample_runtime(registry)
        assert "uptime_s" not in sample
        assert "runtime.uptime_s" not in registry.snapshot()

    def test_returns_the_sampled_values(self, registry):
        sample = sample_runtime(registry)
        assert sample["rss_bytes"] == registry.snapshot()["runtime.rss_bytes"]


class TestRuntimeCollector:
    def test_start_samples_immediately(self, registry):
        collector = RuntimeCollector(interval_s=60.0, registry=registry)
        try:
            collector.start()
            # No interval elapsed, yet gauges exist (synchronous first sample).
            assert registry.snapshot()["runtime.rss_bytes"] > 0
            assert collector.samples == 1
        finally:
            collector.stop()

    def test_background_loop_keeps_sampling(self, registry):
        collector = RuntimeCollector(interval_s=0.05, registry=registry)
        collector.start()
        time.sleep(0.25)
        collector.stop()
        assert collector.samples >= 3
        assert not collector.running

    def test_stop_is_idempotent_and_fast(self, registry):
        collector = RuntimeCollector(interval_s=30.0, registry=registry)
        collector.start()
        started = time.perf_counter()
        collector.stop()
        collector.stop()
        # stop() wakes the waiter; it must not ride out the 30s interval.
        assert time.perf_counter() - started < 5.0

    def test_start_is_idempotent(self, registry):
        collector = RuntimeCollector(interval_s=30.0, registry=registry)
        try:
            assert collector.start() is collector.start()
        finally:
            collector.stop()

    def test_context_manager_runs_and_stops(self, registry):
        with RuntimeCollector(interval_s=30.0, registry=registry) as collector:
            assert collector.running
        assert not collector.running

    def test_uptime_grows_across_samples(self, registry):
        collector = RuntimeCollector(interval_s=0.05, registry=registry)
        collector.start()
        time.sleep(0.15)
        first = registry.snapshot()["runtime.uptime_s"]
        time.sleep(0.15)
        second = registry.snapshot()["runtime.uptime_s"]
        collector.stop()
        assert second > first >= 0.0
