"""Runtime collector: gauge publication, sampling loop, degradation."""

import builtins
import os
import time

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.runtime import (
    HOOK_FAILURE_LIMIT,
    RuntimeCollector,
    open_fds,
    rss_bytes,
    sample_runtime,
)


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestSamplers:
    def test_rss_is_positive_on_this_platform(self):
        assert rss_bytes() > 0

    def test_open_fds_is_positive_or_sentinel(self):
        assert open_fds() >= -1
        assert open_fds() != 0  # a running interpreter holds fds (or -1)


class TestSampleRuntime:
    def test_publishes_all_gauges(self, registry):
        sample_runtime(registry, started_at=time.monotonic())
        snapshot = registry.snapshot()
        assert snapshot["runtime.rss_bytes"] > 0
        assert snapshot["runtime.threads"] >= 1
        assert "runtime.open_fds" in snapshot
        assert snapshot["runtime.uptime_s"] >= 0.0
        gc_keys = [key for key in snapshot if key.startswith("runtime.gc_collections{")]
        assert len(gc_keys) == 3  # one gauge per GC generation

    def test_without_started_at_skips_uptime(self, registry):
        sample = sample_runtime(registry)
        assert "uptime_s" not in sample
        assert "runtime.uptime_s" not in registry.snapshot()

    def test_returns_the_sampled_values(self, registry):
        sample = sample_runtime(registry)
        assert sample["rss_bytes"] == registry.snapshot()["runtime.rss_bytes"]


class TestRuntimeCollector:
    def test_start_samples_immediately(self, registry):
        collector = RuntimeCollector(interval_s=60.0, registry=registry)
        try:
            collector.start()
            # No interval elapsed, yet gauges exist (synchronous first sample).
            assert registry.snapshot()["runtime.rss_bytes"] > 0
            assert collector.samples == 1
        finally:
            collector.stop()

    def test_background_loop_keeps_sampling(self, registry):
        collector = RuntimeCollector(interval_s=0.05, registry=registry)
        collector.start()
        time.sleep(0.25)
        collector.stop()
        assert collector.samples >= 3
        assert not collector.running

    def test_stop_is_idempotent_and_fast(self, registry):
        collector = RuntimeCollector(interval_s=30.0, registry=registry)
        collector.start()
        started = time.perf_counter()
        collector.stop()
        collector.stop()
        # stop() wakes the waiter; it must not ride out the 30s interval.
        assert time.perf_counter() - started < 5.0

    def test_start_is_idempotent(self, registry):
        collector = RuntimeCollector(interval_s=30.0, registry=registry)
        try:
            assert collector.start() is collector.start()
        finally:
            collector.stop()

    def test_context_manager_runs_and_stops(self, registry):
        with RuntimeCollector(interval_s=30.0, registry=registry) as collector:
            assert collector.running
        assert not collector.running

    def test_uptime_grows_across_samples(self, registry):
        collector = RuntimeCollector(interval_s=0.05, registry=registry)
        collector.start()
        time.sleep(0.15)
        first = registry.snapshot()["runtime.uptime_s"]
        time.sleep(0.15)
        second = registry.snapshot()["runtime.uptime_s"]
        collector.stop()
        assert second > first >= 0.0


class TestNoProcDegradation:
    """Platforms without /proc: gauges stay absent instead of lying."""

    def test_unmeasurable_fds_leave_gauge_absent(self, registry, monkeypatch):
        monkeypatch.setattr("repro.obs.runtime.open_fds", lambda: -1)
        sample = sample_runtime(registry)
        assert sample["open_fds"] == -1  # the raw sample still reports it
        assert "runtime.open_fds" not in registry.snapshot()

    def test_unmeasurable_rss_leaves_gauge_absent(self, registry, monkeypatch):
        monkeypatch.setattr("repro.obs.runtime.rss_bytes", lambda: 0)
        sample = sample_runtime(registry)
        assert sample["rss_bytes"] == 0
        snapshot = registry.snapshot()
        assert "runtime.rss_bytes" not in snapshot
        # The measurable gauges are still published:
        assert snapshot["runtime.threads"] >= 1

    def test_open_fds_returns_sentinel_without_proc(self, monkeypatch):
        real_listdir = os.listdir

        def listdir(path):
            if str(path).startswith("/proc"):
                raise FileNotFoundError(path)
            return real_listdir(path)

        monkeypatch.setattr(os, "listdir", listdir)
        assert open_fds() == -1

    def test_rss_falls_back_to_getrusage_without_proc(self, monkeypatch):
        real_open = builtins.open

        def opener(path, *args, **kwargs):
            if str(path).startswith("/proc"):
                raise FileNotFoundError(path)
            return real_open(path, *args, **kwargs)

        monkeypatch.setattr(builtins, "open", opener)
        # getrusage peak RSS is positive on any POSIX; never raises.
        assert rss_bytes() > 0

    def test_sample_runtime_never_raises_without_proc(self, registry, monkeypatch):
        real_open = builtins.open
        real_listdir = os.listdir

        def opener(path, *args, **kwargs):
            if str(path).startswith("/proc"):
                raise FileNotFoundError(path)
            return real_open(path, *args, **kwargs)

        def listdir(path):
            if str(path).startswith("/proc"):
                raise FileNotFoundError(path)
            return real_listdir(path)

        monkeypatch.setattr(builtins, "open", opener)
        monkeypatch.setattr(os, "listdir", listdir)
        sample = sample_runtime(registry, started_at=time.monotonic())
        assert sample["open_fds"] == -1
        snapshot = registry.snapshot()
        assert "runtime.open_fds" not in snapshot
        assert snapshot["runtime.uptime_s"] >= 0.0


class TestHooks:
    def test_hooks_run_on_every_sample(self, registry):
        ticks = []
        collector = RuntimeCollector(
            interval_s=30.0, registry=registry, hooks=[lambda: ticks.append(1)]
        )
        try:
            collector.start()  # synchronous first sample
            collector.sample()
            assert len(ticks) == 2
        finally:
            collector.stop()

    def test_add_hook_after_construction(self, registry):
        collector = RuntimeCollector(interval_s=30.0, registry=registry)
        ticks = []
        collector.add_hook(lambda: ticks.append(1))
        collector.sample()
        assert ticks == [1]

    def test_persistently_raising_hook_is_disabled_not_fatal(self, registry):
        calls = []

        def bad():
            calls.append("bad")
            raise RuntimeError("boom")

        collector = RuntimeCollector(
            interval_s=30.0, registry=registry,
            hooks=[bad, lambda: calls.append("good")],
        )
        for _ in range(HOOK_FAILURE_LIMIT + 2):
            collector.sample()
        # bad survived its first failures, was dropped only after the
        # consecutive-failure limit; good ran every time.
        assert calls.count("bad") == HOOK_FAILURE_LIMIT
        assert calls.count("good") == HOOK_FAILURE_LIMIT + 2
        assert len(collector.hooks) == 1

    def test_transient_hook_failure_does_not_disable_it(self, registry):
        # A single blip (e.g. one failed alert-log write) must not
        # permanently silence SLO evaluation: the failure counter resets
        # on the next success.
        outcomes = iter([True] + [False] * (HOOK_FAILURE_LIMIT * 3))
        calls = []

        def flaky():
            calls.append(1)
            if next(outcomes):
                raise OSError("disk full")

        collector = RuntimeCollector(
            interval_s=30.0, registry=registry, hooks=[flaky]
        )
        for _ in range(HOOK_FAILURE_LIMIT * 2):
            collector.sample()
        assert collector.hooks == [flaky]
        assert len(calls) == HOOK_FAILURE_LIMIT * 2
