"""CLI surface for profiling: ``upcc profile`` and ``upcc stats --json``."""

import json

import pytest

import repro.obs as obs
from repro.cli import main
from repro.obs.metrics import MetricsRegistry, set_registry
from repro.obs.trace import Tracer, set_tracer


@pytest.fixture(autouse=True)
def _restore_globals():
    previous_tracer = set_tracer(Tracer(enabled=False))
    previous_registry = set_registry(MetricsRegistry())
    try:
        yield
    finally:
        obs.unwire_logging()
        set_tracer(previous_tracer)
        set_registry(previous_registry)


class TestProfileCommand:
    def test_table_to_stdout(self, capsys):
        assert main(["profile", "easybiz", "--runs", "2"]) == 0
        out = capsys.readouterr().out
        assert "count" in out
        assert "xsdgen.generate" in out
        assert "xsdgen.generate;xsdgen.library" in out

    def test_collapsed_to_file(self, tmp_path, capsys):
        out_file = tmp_path / "profile.folded"
        code = main([
            "profile", "easybiz", "--runs", "1",
            "--profile-format", "collapsed", "--profile-out", str(out_file),
        ])
        assert code == 0
        lines = out_file.read_text(encoding="utf-8").splitlines()
        assert lines
        for line in lines:
            stack, _, value = line.rpartition(" ")
            assert stack.startswith("xsdgen.generate")
            assert int(value) >= 0

    def test_json_format_is_machine_readable(self, capsys):
        assert main(["profile", "easybiz", "--runs", "1", "--profile-format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        stacks = [node["stack"] for node in payload["nodes"]]
        assert any(stack.startswith("xsdgen.generate;xsdgen.library") for stack in stacks)
        assert payload["span_count"] >= len(stacks)

    def test_repeated_runs_fold_into_counts(self, capsys):
        assert main(["profile", "easybiz", "--runs", "3", "--profile-format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        generate = next(n for n in payload["nodes"] if n["stack"] == "xsdgen.generate")
        assert generate["count"] == 3

    def test_cprofile_attach(self, tmp_path):
        stats_file = tmp_path / "cprofile.txt"
        code = main([
            "profile", "easybiz", "--runs", "1", "--cprofile-out", str(stats_file),
        ])
        assert code == 0
        assert "function calls" in stats_file.read_text(encoding="utf-8")

    def test_ecommerce_catalog(self, capsys):
        assert main(["profile", "ecommerce", "--runs", "1"]) == 0
        assert "xsdgen.generate" in capsys.readouterr().out


class TestStatsJson:
    def test_json_output_parses_clean(self, capsys):
        assert main(["stats", "easybiz", "--runs", "2", "--json"]) == 0
        out = capsys.readouterr().out
        payload = json.loads(out)  # would raise if span-tree text leaked in
        assert payload["model"] == "easybiz"
        assert payload["runs"] == 2
        assert payload["schemas"] == 6
        assert payload["validation"]["ok"] is True
        assert payload["coverage"]["mapped"] <= payload["coverage"]["total_elements"]
        assert payload["metrics"]["xsdgen.schemas_generated"] >= 6

    def test_plain_stats_still_prints_span_tree(self, capsys):
        assert main(["stats", "easybiz", "--runs", "1"]) == 0
        assert "== span tree ==" in capsys.readouterr().out
