"""Figure 8: the CDTLibrary schema fragment for CodeType, plus QDT/ENUM rules."""

import pytest

from repro.xmlutil.qname import QName
from repro.xsd.components import XSD_NS, AttributeUse

CDT_NS = "urn:au:gov:vic:easybiz:types:draft:coredatatypes"
QDT_NS = "urn:au:gov:vic:easybiz:types:draft:CommonDataTypes"
ENUM_NS = "urn:au:gov:vic:easybiz:types:draft:EnumerationTypes"


@pytest.fixture
def cdt_schema(easybiz_result):
    return easybiz_result.schemas[CDT_NS].schema


@pytest.fixture
def qdt_schema(easybiz_result):
    return easybiz_result.schemas[QDT_NS].schema


@pytest.fixture
def enum_schema(easybiz_result):
    return easybiz_result.schemas[ENUM_NS].schema


class TestCodeTypeFigure8:
    def test_simple_content_extension_of_string(self, cdt_schema):
        code = cdt_schema.complex_type("CodeType")
        assert code.particle is None
        assert code.simple_content.derivation == "extension"
        assert code.simple_content.base == QName(XSD_NS, "string")

    def test_four_supplementary_attributes_with_figure8_uses(self, cdt_schema):
        attributes = {a.name: a for a in cdt_schema.complex_type("CodeType").simple_content.attributes}
        assert set(attributes) == {
            "CodeListAgName", "CodeListName", "CodeListSchemeURI", "LanguageIdentifier",
        }
        assert attributes["CodeListAgName"].use is AttributeUse.REQUIRED
        assert attributes["CodeListName"].use is AttributeUse.REQUIRED
        assert attributes["CodeListSchemeURI"].use is AttributeUse.REQUIRED
        assert attributes["LanguageIdentifier"].use is AttributeUse.OPTIONAL

    def test_attribute_types_are_builtins(self, cdt_schema):
        for attribute in cdt_schema.complex_type("CodeType").simple_content.attributes:
            assert attribute.type == QName(XSD_NS, "string")

    def test_rendered_fragment_matches_figure8(self, easybiz_result):
        text = easybiz_result.schemas[CDT_NS].to_string()
        assert '<xsd:complexType name="CodeType">' in text
        assert "<xsd:simpleContent>" in text
        assert '<xsd:extension base="xsd:string">' in text
        assert '<xsd:attribute name="CodeListAgName" type="xsd:string" use="required"/>' in text
        assert '<xsd:attribute name="LanguageIdentifier" type="xsd:string" use="optional"/>' in text

    def test_every_cdt_gets_a_type(self, cdt_schema):
        names = {ct.name for ct in cdt_schema.complex_types}
        assert {"CodeType", "TextType", "IdentifierType", "DateType",
                "DateTimeType", "BinaryObjectType", "MeasureType", "AmountType"} <= names

    def test_decimal_contents_map_to_decimal(self, cdt_schema):
        assert cdt_schema.complex_type("AmountType").simple_content.base == QName(XSD_NS, "decimal")
        assert cdt_schema.complex_type("MeasureType").simple_content.base == QName(XSD_NS, "decimal")

    def test_binary_content_maps_to_base64(self, cdt_schema):
        assert cdt_schema.complex_type("BinaryObjectType").simple_content.base == QName(XSD_NS, "base64Binary")


class TestQdtGeneration:
    def test_enum_restricted_qdt_extends_enum_simple_type(self, qdt_schema):
        country = qdt_schema.complex_type("CountryTypeType")
        assert country.simple_content.derivation == "extension"
        assert country.simple_content.base == QName(ENUM_NS, "CountryType_CodeType")
        kept = {a.name for a in country.simple_content.attributes}
        assert kept == {"CodeListName"}

    def test_plain_qdt_restricts_cdt_complex_type(self, qdt_schema):
        indicator = qdt_schema.complex_type("Indicator_CodeType")
        assert indicator.simple_content.derivation == "restriction"
        assert indicator.simple_content.base == QName(CDT_NS, "CodeType")

    def test_dropped_optional_sup_is_prohibited(self, qdt_schema):
        indicator = qdt_schema.complex_type("Indicator_CodeType")
        uses = {a.name: a.use for a in indicator.simple_content.attributes}
        # LanguageIdentifier is optional on Code and dropped -> prohibited;
        # the three required SUPs cannot be prohibited in a valid restriction.
        assert uses == {"LanguageIdentifier": AttributeUse.PROHIBITED}

    def test_qdt_schema_imports_enum_and_cdt(self, qdt_schema):
        imported = {imp.namespace for imp in qdt_schema.imports}
        assert imported == {ENUM_NS, CDT_NS}


class TestEnumGeneration:
    def test_simple_types_restrict_token(self, enum_schema):
        country = enum_schema.simple_type("CountryType_CodeType")
        assert country.base == QName(XSD_NS, "token")

    def test_enumeration_values_are_literal_names(self, enum_schema):
        country = enum_schema.simple_type("CountryType_CodeType")
        assert country.enumeration_values == ["USA", "AUT", "AUS"]
        council = enum_schema.simple_type("CouncilType_CodeType")
        assert council.enumeration_values == [
            "kingston", "morningtonpeninsula", "northerngrampians", "portphillip", "pyrenees",
        ]

    def test_rendered_enumeration_tags(self, easybiz_result):
        text = easybiz_result.schemas[ENUM_NS].to_string()
        assert '<xsd:restriction base="xsd:token">' in text
        assert '<xsd:enumeration value="USA"/>' in text
