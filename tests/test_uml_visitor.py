"""Unit tests for traversal utilities and the tree renderer."""

from repro.uml.association import AggregationKind
from repro.uml.classifier import Class
from repro.uml.model import Model
from repro.uml.visitor import census, iter_elements, render_tree, summarize, visit


def _model():
    model = Model("M")
    lib = model.add_package("Lib", stereotype="CCLibrary", baseURN="urn:x")
    cdt = lib.add_data_type("Text", stereotype="CDT")
    acc = lib.add_class("Person", stereotype="ACC")
    acc.add_attribute("FirstName", cdt, "1", stereotype="BCC")
    other = lib.add_class("Address", stereotype="ACC")
    lib.add_association(acc, other, "Private", "0..1", AggregationKind.COMPOSITE, stereotype="ASCC")
    enum = lib.add_enumeration("Codes", stereotype="ENUM")
    enum.add_literal("A", "Alpha")
    return model


class TestIterAndVisit:
    def test_iter_elements_filters_by_type(self):
        model = _model()
        classes = list(iter_elements(model, Class))
        assert {cls.name for cls in classes} == {"Person", "Address"}

    def test_visit_touches_every_element(self):
        model = _model()
        seen = []
        visit(model, lambda e: seen.append(e))
        assert len(seen) == len(list(model.walk()))


class TestRenderTree:
    def test_contains_stereotyped_entries(self):
        text = render_tree(_model())
        assert "«CCLibrary» Lib" in text
        assert "«ACC» Person" in text
        assert "+ «BCC» FirstName: Text [1]" in text
        assert "Person -> +Private Address [0..1] (composite)" in text
        assert "* A = Alpha" in text

    def test_indentation_reflects_nesting(self):
        lines = render_tree(_model()).splitlines()
        root = next(line for line in lines if "M" == line.strip())
        lib = next(line for line in lines if "Lib" in line)
        assert len(lib) - len(lib.lstrip()) > len(root) - len(root.lstrip())


class TestCensus:
    def test_counts_by_stereotype(self):
        counts = census(_model())
        assert counts["ACC"] == 2
        assert counts["BCC"] == 1
        assert counts["ASCC"] == 1
        assert counts["ENUM"] == 1
        assert counts["CCLibrary"] == 1

    def test_summarize_counts_metaclasses(self):
        counts = summarize(_model())
        assert counts["Class"] == 2
        assert counts["Enumeration"] == 1
        assert counts["Association"] == 1
