"""Provenance layer: record round-trips, determinism, coverage, `upcc explain`.

Every construct the generator emits carries a ProvenanceRecord naming the
XSD target, the UML source and the NDR rule that mapped one onto the
other.  These tests pin the acceptance properties of that layer: the
index answers both directions on the EasyBiz catalog, it is identical
under serial, parallel and cache-replay generation, embedding is off by
default (byte-identical schemas), and the `explain` CLI resolves targets
and sources end to end.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.xsdgen import (
    NDR_RULES,
    GenerationCache,
    GenerationOptions,
    ProvenanceIndex,
    ProvenanceRecord,
    SchemaGenerator,
    records_from_schema_text,
)
from repro.xsdgen.provenance import parse_target

ROOT_NAME = "HoardingPermit"


def _generate(easybiz, **option_kwargs):
    options = GenerationOptions(validate_first=False, **option_kwargs)
    generator = SchemaGenerator(easybiz.model, options)
    return generator.generate(easybiz.doc_library, root=ROOT_NAME)


class TestRecords:
    def test_bbie_round_trip(self, easybiz_result):
        index = easybiz_result.provenance
        hits = index.by_source("HoardingPermit.SafetyPrecaution")
        assert len(hits) == 1
        record = hits[0]
        assert record.rule == "NDR-BBIE-EL"
        assert record.target_kind == "element"
        assert record.target_path == "HoardingPermitType/SafetyPrecaution"
        assert record.source_stereotype == "BBIE"
        assert record.source_id is not None
        assert record.based_on is not None and record.based_on.startswith("BCC ")

        # Inverse direction: the target path resolves back to the same source.
        back = index.by_target(record.target_path)
        assert [r.source_id for r in back] == [record.source_id]

    def test_xpath_target_constrains_kind(self, easybiz_result):
        index = easybiz_result.provenance
        hits = index.by_target("//xsd:complexType[@name='HoardingPermitType']")
        assert [record.rule for record in hits] == ["NDR-ABIE-CT"]
        assert index.by_target("//xsd:simpleType[@name='HoardingPermitType']") == []

    def test_by_source_xmi_id(self, easybiz_result):
        index = easybiz_result.provenance
        [abie_record] = index.by_target("//xsd:complexType[@name='HoardingPermitType']")
        hits = index.by_source(abie_record.source_id)
        rules = {record.rule for record in hits}
        # The root ABIE yields both its complexType and the document root element.
        assert rules == {"NDR-ABIE-CT", "NDR-DOC-ROOT"}

    def test_every_record_cites_a_known_rule(self, easybiz_result):
        for record in easybiz_result.provenance:
            assert record.rule in NDR_RULES
            assert record.rule_text == NDR_RULES[record.rule]

    def test_import_edges_are_recorded(self, easybiz_result):
        imports = [
            record
            for record in easybiz_result.provenance
            if record.rule == "NDR-IMPORT"
        ]
        assert imports
        assert all(record.imported_namespace for record in imports)

    def test_jsonl_round_trip(self, easybiz_result):
        index = easybiz_result.provenance
        rebuilt = ProvenanceIndex.from_jsonl(index.to_jsonl())
        assert rebuilt.records() == index.records()

    def test_dict_round_trip_omits_none_fields(self, easybiz_result):
        record = easybiz_result.provenance.records()[0]
        data = record.to_dict()
        assert None not in data.values()
        assert ProvenanceRecord.from_dict(json.loads(json.dumps(data))) == record

    @pytest.mark.parametrize(
        ("spec", "expected"),
        [
            ("//xsd:complexType[@name='CodeType']", ("complexType", "CodeType")),
            ('//xs:element[@name="HoardingPermit"]', ("element", "HoardingPermit")),
            ("HoardingPermitType/StartDate", (None, "HoardingPermitType/StartDate")),
            ("CodeType", (None, "CodeType")),
        ],
    )
    def test_parse_target(self, spec, expected):
        assert parse_target(spec) == expected


class TestDeterminism:
    def test_parallel_matches_serial(self, easybiz):
        serial = _generate(easybiz)
        parallel = _generate(easybiz, jobs=4)
        assert parallel.provenance.to_jsonl() == serial.provenance.to_jsonl()

    def test_cache_replay_matches_cold(self, easybiz):
        cache = GenerationCache()
        options = GenerationOptions(validate_first=False, use_cache=True)
        cold = SchemaGenerator(easybiz.model, options, cache=cache).generate(
            easybiz.doc_library, root=ROOT_NAME
        )
        warm = SchemaGenerator(easybiz.model, options, cache=cache).generate(
            easybiz.doc_library, root=ROOT_NAME
        )
        assert warm.provenance.to_jsonl() == cold.provenance.to_jsonl()
        assert {urn: g.to_string() for urn, g in warm.schemas.items()} == {
            urn: g.to_string() for urn, g in cold.schemas.items()
        }


class TestEmbedding:
    def test_off_by_default_and_byte_identical(self, easybiz):
        plain = _generate(easybiz)
        explicit_off = _generate(easybiz, embed_provenance=False)
        for urn, generated in plain.schemas.items():
            text = generated.to_string()
            assert text == explicit_off.schemas[urn].to_string()
            assert "prov:" not in text
            assert records_from_schema_text(text) == []

    def test_embedded_records_round_trip(self, easybiz):
        result = _generate(easybiz, embed_provenance=True)
        for generated in result.schemas.values():
            embedded = records_from_schema_text(generated.to_string())
            assert embedded == list(generated.provenance)


class TestCoverage:
    def test_dead_model_elements_are_flagged(self, easybiz_result):
        report = easybiz_result.coverage()
        assert not report.ok
        unmapped_paths = [path for _, path in report.unmapped]
        assert len(unmapped_paths) == 2
        assert all("HoardingDetails" in path for path in unmapped_paths)
        assert report.mapped == report.total_elements - 2
        assert "unmapped: " in report.render_text()


@pytest.fixture
def explain_setup(tmp_path):
    """An XMI model plus generated schemas with a provenance.jsonl sidecar."""
    xmi = tmp_path / "easybiz.xmi"
    assert main(["example", "easybiz", "--out", str(xmi)]) == 0
    out = tmp_path / "schemas"
    assert main([
        "generate", str(xmi),
        "--library", "EB005-HoardingPermit",
        "--root", ROOT_NAME,
        "--out", str(out),
        "--emit-provenance",
    ]) == 0
    assert (out / "provenance.jsonl").is_file()
    [root_schema] = [
        path for path in out.rglob("*.xsd") if "HoardingPermit" in path.name
    ]
    return xmi, out, root_schema


class TestExplainCli:
    def test_target_against_schema(self, explain_setup, capsys):
        _, _, schema = explain_setup
        assert main([
            "explain", "--schema", str(schema),
            "--target", "//xsd:complexType[@name='HoardingPermitType']",
        ]) == 0
        out = capsys.readouterr().out
        assert "NDR-ABIE-CT" in out
        assert "ABIE" in out

    def test_source_against_model(self, explain_setup, capsys):
        xmi, _, _ = explain_setup
        assert main([
            "explain", str(xmi),
            "--library", "EB005-HoardingPermit",
            "--root", ROOT_NAME,
            "--source", "HoardingPermit.SafetyPrecaution",
        ]) == 0
        out = capsys.readouterr().out
        assert "NDR-BBIE-EL" in out
        assert "basedOn BCC" in out

    def test_miss_exits_one(self, explain_setup, capsys):
        _, _, schema = explain_setup
        assert main([
            "explain", "--schema", str(schema),
            "--target", "//xsd:complexType[@name='NoSuchType']",
        ]) == 1
        assert "no provenance record matches" in capsys.readouterr().out

    def test_requires_target_or_source(self, explain_setup, capsys):
        _, _, schema = explain_setup
        assert main(["explain", "--schema", str(schema)]) == 2
        assert "provide --target and/or --source" in capsys.readouterr().err

    def test_requires_model_xor_schema(self, explain_setup, capsys):
        xmi, _, schema = explain_setup
        assert main([
            "explain", str(xmi), "--schema", str(schema), "--target", "CodeType",
        ]) == 2
        assert "either an XMI model or --schema" in capsys.readouterr().err

    def test_missing_sidecar_reported(self, tmp_path, explain_setup, capsys):
        _, _, schema = explain_setup
        stray = tmp_path / "stray"
        stray.mkdir()
        copy = stray / schema.name
        copy.write_text(schema.read_text(encoding="utf-8"), encoding="utf-8")
        assert main([
            "explain", "--schema", str(copy), "--target", "CodeType",
        ]) == 1
        assert "no provenance.jsonl sidecar" in capsys.readouterr().err

    def test_embedded_schema_needs_no_sidecar(self, tmp_path, capsys):
        xmi = tmp_path / "easybiz.xmi"
        assert main(["example", "easybiz", "--out", str(xmi)]) == 0
        out = tmp_path / "schemas"
        assert main([
            "generate", str(xmi),
            "--library", "EB005-HoardingPermit",
            "--root", ROOT_NAME,
            "--out", str(out),
            "--embed-provenance",
        ]) == 0
        [schema] = [p for p in out.rglob("*.xsd") if "HoardingPermit" in p.name]
        assert main([
            "explain", "--schema", str(schema),
            "--target", "//xsd:element[@name='HoardingPermit']",
        ]) == 0
        assert "NDR-DOC-ROOT" in capsys.readouterr().out
