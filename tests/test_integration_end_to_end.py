"""Integration tests across every layer of the pipeline.

model construction -> validation -> schema generation -> file layout ->
schema reload from disk -> instance generation -> instance validation ->
XMI round trip -> registry -> regeneration equivalence.
"""

from pathlib import Path

from repro import CctsModel, SchemaGenerator, validate_model
from repro.instances import InstanceGenerator
from repro.registry import Registry
from repro.xmi import read_xmi, write_xmi
from repro.xsd.validator import SchemaSet, validate_instance
from repro.xsdgen import GenerationOptions


class TestFullPipeline:
    def test_schemas_written_to_disk_revalidate_instances(self, easybiz, tmp_path):
        options = GenerationOptions(target_directory=tmp_path)
        result = SchemaGenerator(easybiz.model, options).generate(
            easybiz.doc_library, root="HoardingPermit"
        )
        # Reload from disk -- the parser, not the in-memory objects.
        schema_set = SchemaSet.from_directory(tmp_path)
        assert sorted(schema_set.namespaces) == sorted(s for s in result.schemas)
        document = InstanceGenerator(schema_set).generate("HoardingPermit")
        assert validate_instance(schema_set, document) == []

    def test_import_locations_resolve_on_disk(self, easybiz, tmp_path):
        options = GenerationOptions(target_directory=tmp_path)
        result = SchemaGenerator(easybiz.model, options).generate(
            easybiz.doc_library, root="HoardingPermit"
        )
        for generated in result.schemas.values():
            schema_path = tmp_path / generated.namespace.folder / generated.namespace.file_name
            for import_decl in generated.schema.imports:
                resolved = (schema_path.parent / import_decl.schema_location).resolve()
                assert resolved.exists(), f"{import_decl.schema_location} missing"

    def test_annotated_generation_round_trips(self, easybiz, tmp_path):
        options = GenerationOptions(annotated=True, target_directory=tmp_path)
        SchemaGenerator(easybiz.model, options).generate(
            easybiz.doc_library, root="HoardingPermit"
        )
        schema_set = SchemaSet.from_directory(tmp_path)
        document = InstanceGenerator(schema_set).generate("HoardingPermit")
        assert validate_instance(schema_set, document) == []
        text = (tmp_path / "urn_au_gov_vic_easybiz_" / "data_draft_EB005-HoardingPermit_0.4.xsd").read_text()
        assert "ccts:AcronymCode" in text
        assert "ccts:DictionaryEntryName" in text

    def test_registry_stored_model_regenerates_identically(self, easybiz, easybiz_result, tmp_path):
        registry = Registry(tmp_path)
        registry.store("easybiz", easybiz.model)
        loaded = registry.load("easybiz")
        result = SchemaGenerator(loaded).generate(
            loaded.library_named("EB005-HoardingPermit"), root="HoardingPermit"
        )
        for urn, generated in easybiz_result.schemas.items():
            assert result.schemas[urn].to_string() == generated.to_string()

    def test_xmi_file_pipeline(self, easybiz, tmp_path):
        xmi_path = tmp_path / "m.xmi"
        write_xmi(easybiz.model.model, xmi_path)
        model = CctsModel(model=read_xmi(Path(xmi_path).read_text(encoding="utf-8")))
        assert validate_model(model).ok
        result = SchemaGenerator(model).generate(
            model.library_named("EB005-HoardingPermit"), root="HoardingPermit"
        )
        schema_set = result.schema_set()
        document = InstanceGenerator(schema_set).generate("HoardingPermit")
        assert validate_instance(schema_set, document) == []

    def test_both_validation_engines_accept_generated_instances(self, easybiz_schema_set):
        document = InstanceGenerator(easybiz_schema_set).generate("HoardingPermit")
        assert validate_instance(easybiz_schema_set, document, engine="nfa") == []
        assert validate_instance(easybiz_schema_set, document, engine="backtracking") == []

    def test_minimal_and_maximal_instances_both_validate(self, easybiz_schema_set):
        for fill in (True, False):
            generator = InstanceGenerator(easybiz_schema_set, fill_optional=fill)
            document = generator.generate("HoardingPermit")
            assert validate_instance(easybiz_schema_set, document) == []


class TestCrossBusinessLibraryGeneration:
    def test_imports_across_base_urns_resolve_on_disk(self, tmp_path):
        """Two business libraries (different baseURNs) -> different folders;
        the relative schemaLocations must still resolve."""
        from repro.catalog.primitives import add_standard_prim_library
        from repro.ccts.derivation import derive_abie
        from repro.instances import InstanceGenerator

        model = CctsModel("Federated")
        un = model.add_business_library("UN", "urn:un:unece:uncefact")
        prims = add_standard_prim_library(un)
        string = prims.primitive("String").element
        cdts = un.add_cdt_library("CoreDataTypes")
        text = cdts.add_cdt("Text")
        text.set_content(string)
        ccs = un.add_cc_library("Components")
        party = ccs.add_acc("Party")
        party.add_bcc("Name", text, "1")
        shared = un.add_bie_library("SharedAggregates")
        party_abie = derive_abie(shared, party)
        party_abie.include("Name")

        national = model.add_business_library("AT", "urn:at:gv:bmf")
        doc = national.add_doc_library("TaxFiling")
        filing_acc = ccs.add_acc("TaxFiling")
        filing_acc.add_bcc("Reference", text, "1")
        filing_acc.add_ascc("Filer", party, "1")
        derivation = derive_abie(doc, filing_acc)
        derivation.include("Reference")
        derivation.connect("Filer", party_abie.abie, based_on="Filer")

        options = GenerationOptions(target_directory=tmp_path)
        result = SchemaGenerator(model, options).generate(doc, root="TaxFiling")
        folders = {g.namespace.folder for g in result.schemas.values()}
        assert folders == {"urn_un_unece_uncefact_", "urn_at_gv_bmf_"}
        for generated in result.schemas.values():
            schema_path = tmp_path / generated.namespace.folder / generated.namespace.file_name
            for import_decl in generated.schema.imports:
                assert (schema_path.parent / import_decl.schema_location).resolve().exists()
        # The whole federated set still validates instances.
        schema_set = SchemaSet.from_directory(tmp_path)
        message = InstanceGenerator(schema_set).generate("TaxFiling")
        assert validate_instance(schema_set, message) == []
