"""Targeted edge-path tests for branches the main suites skim over."""

import pytest

from repro.xmlutil.qname import QName


class TestRelaxNgBoundedOccurs:
    def test_bounded_range_unrolls(self):
        """minOccurs=2 maxOccurs=4 -> two copies plus two optionals."""
        from repro.catalog.primitives import add_standard_prim_library
        from repro.ccts.derivation import derive_abie
        from repro.ccts.model import CctsModel
        from repro.instances import InstanceGenerator
        from repro.rngen import RngValidator, compile_grammar, result_to_rng
        from repro.xsdgen import SchemaGenerator

        model = CctsModel("Bounded")
        business = model.add_business_library("B", "urn:bounded")
        prims = add_standard_prim_library(business)
        string = prims.primitive("String").element
        cdts = business.add_cdt_library("Cdts")
        text = cdts.add_cdt("Text")
        text.set_content(string)
        ccs = business.add_cc_library("Ccs")
        acc = ccs.add_acc("Box")
        acc.add_bcc("Item", text, "2..4")
        doc = business.add_doc_library("Doc")
        derivation = derive_abie(doc, acc)
        derivation.include("Item", "2..4")
        result = SchemaGenerator(model).generate(doc, root="Box")
        grammar = compile_grammar(result_to_rng(result, "Box"))
        validator = RngValidator(grammar)

        def box(count):
            from repro.xmlutil.writer import XmlElement

            root = XmlElement("d:Box", {"xmlns:d": result.root.namespace.urn})
            for _ in range(count):
                root.add("d:Item").text("x")
            return root

        assert not validator.validate(box(1))
        assert validator.validate(box(2))
        assert validator.validate(box(3))
        assert validator.validate(box(4))
        assert not validator.validate(box(5))
        # And the XSD validator agrees at the boundaries.
        from repro.xsd.validator import validate_instance

        schema_set = result.schema_set()
        assert validate_instance(schema_set, box(2)) == []
        assert validate_instance(schema_set, box(5))
        # The instance generator respects the lower bound.
        generated = InstanceGenerator(schema_set).generate("Box")
        items = [c for c in generated.element_children if c.tag.endswith("Item")]
        assert len(items) >= 2


class TestBindingScalarCoercion:
    def test_python_scalars_marshal(self, ecommerce):
        from repro.binding import marshal, unmarshal
        from repro.xsdgen import SchemaGenerator

        schema_set = SchemaGenerator(ecommerce.model).generate(
            ecommerce.doc_library, root="PurchaseOrder"
        ).schema_set()
        data = {
            "Identification": 12345,              # int -> "12345"
            "IssueDate": "2007-04-15",
            "BuyerParty": {
                "Identification": "B", "Name": "N",
                "PostalAddress": {"Street": "s", "CityName": "c"},
            },
            "SellerParty": {
                "Identification": "S", "Name": "N",
                "PostalAddress": {"Street": "s", "CityName": "c"},
            },
            "OrderedLineItem": [
                {"Identification": "L", "Quantity": 3, "UnitPrice": 19.9},
            ],
        }
        document = marshal(schema_set, "PurchaseOrder", data)
        back = unmarshal(schema_set, document)
        assert back["Identification"] == "12345"
        assert back["OrderedLineItem"][0]["Quantity"] == "3"
        assert back["OrderedLineItem"][0]["UnitPrice"] == "19.9"

    def test_bool_coercion(self):
        from repro.binding.marshal import _to_text

        assert _to_text(True) == "true"
        assert _to_text(False) == "false"
        assert _to_text(7) == "7"


class TestSpreadsheetEdgeCases:
    def test_unknown_library_kind_rejected(self):
        from repro.errors import InterchangeError
        from repro.interchange import import_csv
        from repro.interchange.spreadsheet import COLUMNS

        header = ",".join(COLUMNS)
        text = f"{header}\nACC,Lib,FancyLibrary,,Thing,,,,,\n"
        with pytest.raises(InterchangeError, match="unknown library kind"):
            import_csv(text)

    def test_unknown_classifier_kind_rejected(self):
        from repro.errors import InterchangeError
        from repro.interchange import import_csv
        from repro.interchange.spreadsheet import COLUMNS

        header = ",".join(COLUMNS)
        text = f"{header}\nWAT,Lib,CCLibrary,,Thing,,,,,\n"
        with pytest.raises(InterchangeError, match="unknown classifier kind"):
            import_csv(text)

    def test_reference_to_missing_classifier_rejected(self):
        from repro.errors import InterchangeError
        from repro.interchange import import_csv
        from repro.interchange.spreadsheet import COLUMNS

        header = ",".join(COLUMNS)
        text = (
            f"{header}\n"
            "ACC,Lib,CCLibrary,,Thing,,,,,\n"
            "BCC,Lib,CCLibrary,Thing,Field,Ghost,1,,,\n"
        )
        with pytest.raises(InterchangeError, match="unknown classifier"):
            import_csv(text)


class TestCompatEdgeCases:
    def test_type_category_change_is_breaking(self, easybiz_schema_set):
        from repro.xsd.compat import check_compatibility
        from repro.xsd.components import Schema, SimpleType
        from repro.xsd.validator import SchemaSet

        enum_ns = "urn:au:gov:vic:easybiz:types:draft:EnumerationTypes"
        # Replace the ENUM schema with one where a simpleType became complex.
        from repro.xsd.components import ComplexType, SequenceGroup

        hacked = Schema(enum_ns, prefixes={"enum": enum_ns})
        hacked.items.append(ComplexType("CountryType_CodeType", particle=SequenceGroup()))
        old = easybiz_schema_set
        new_set = SchemaSet([old.schema_for(ns) for ns in old.namespaces if ns != enum_ns] + [hacked])
        report = check_compatibility(old, new_set)
        assert any("category" in str(c) for c in report.breaking)

    def test_simple_type_base_change_is_breaking(self, easybiz_schema_set):
        from repro.xsd.compat import check_compatibility
        from repro.xsd.components import Facet, Schema, SimpleType, xsd
        from repro.xsd.validator import SchemaSet

        enum_ns = "urn:au:gov:vic:easybiz:types:draft:EnumerationTypes"
        old_schema = easybiz_schema_set.schema_for(enum_ns)
        hacked = Schema(enum_ns, prefixes=dict(old_schema.prefixes))
        for item in old_schema.simple_types:
            hacked.items.append(SimpleType(item.name, base=xsd("string"), facets=list(item.facets)))
        new_set = SchemaSet(
            [easybiz_schema_set.schema_for(ns) for ns in easybiz_schema_set.namespaces if ns != enum_ns]
            + [hacked]
        )
        report = check_compatibility(easybiz_schema_set, new_set)
        assert any("base changed" in str(c) for c in report.breaking)


class TestParseXmlXmlPrefix:
    def test_xml_lang_attribute(self):
        from repro.xmlutil.writer import parse_xml

        parsed = parse_xml('<a xml:lang="en">x</a>')
        assert parsed.attributes.get("xml:lang") == "en"


class TestMinimalCliInstance:
    def test_minimal_flag(self, tmp_path, capsys):
        from repro.cli import main

        xmi = tmp_path / "m.xmi"
        main(["example", "easybiz", "--out", str(xmi)])
        schemas = tmp_path / "schemas"
        main(["generate", str(xmi), "--library", "EB005-HoardingPermit",
              "--root", "HoardingPermit", "--out", str(schemas)])
        capsys.readouterr()
        assert main(["instance", str(schemas), "--root", "HoardingPermit", "--minimal"]) == 0
        out = capsys.readouterr().out
        assert "IncludedRegistration" in out
        assert "ClosureReason" not in out
