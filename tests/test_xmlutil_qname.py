"""Unit tests for qualified names."""

import pytest

from repro.xmlutil.qname import (
    XML_NAMESPACE,
    QName,
    resolve_prefixed,
    split_qname,
)


class TestQName:
    def test_clark_notation(self):
        assert QName("urn:x", "Code").clark() == "{urn:x}Code"

    def test_clark_without_namespace(self):
        assert QName("", "Code").clark() == "Code"

    def test_from_clark_round_trip(self):
        qname = QName("urn:x", "Code")
        assert QName.from_clark(qname.clark()) == qname

    def test_from_clark_bare(self):
        assert QName.from_clark("Code") == QName("", "Code")

    def test_prefixed_rendering(self):
        assert QName("urn:x", "Code").prefixed("cdt1") == "cdt1:Code"

    def test_prefixed_without_prefix(self):
        assert QName("urn:x", "Code").prefixed(None) == "Code"

    def test_equality_and_hash(self):
        assert QName("a", "b") == QName("a", "b")
        assert hash(QName("a", "b")) == hash(QName("a", "b"))
        assert QName("a", "b") != QName("a", "c")

    def test_usable_as_dict_key(self):
        table = {QName("urn:x", "Code"): 1}
        assert table[QName("urn:x", "Code")] == 1

    def test_ordering(self):
        assert QName("a", "b") < QName("a", "c") < QName("b", "a")


class TestSplitQname:
    def test_prefixed(self):
        assert split_qname("cdt1:CodeType") == ("cdt1", "CodeType")

    def test_unprefixed(self):
        assert split_qname("CodeType") == (None, "CodeType")

    def test_more_than_one_colon_rejected(self):
        # 'a:b:c' is not a QName; expat with namespace processing refuses
        # it as not well-formed, so the interpreted path must too.
        with pytest.raises(ValueError):
            split_qname("a:b:c")

    def test_trailing_colon_splits(self):
        assert split_qname("a:") == ("a", "")


class TestResolvePrefixed:
    def test_resolves_declared_prefix(self):
        namespaces = {"cdt": "urn:cdt"}
        assert resolve_prefixed("cdt:Code", namespaces) == QName("urn:cdt", "Code")

    def test_default_namespace(self):
        namespaces = {None: "urn:default"}
        assert resolve_prefixed("Code", namespaces) == QName("urn:default", "Code")

    def test_no_default_falls_back_to_empty(self):
        assert resolve_prefixed("Code", {}) == QName("", "Code")

    def test_undeclared_prefix_raises(self):
        with pytest.raises(KeyError):
            resolve_prefixed("nope:Code", {})

    def test_xml_prefix_is_implicitly_bound(self):
        # The 'xml' prefix never needs a declaration (XML Namespaces 1.0
        # section 3); xml:lang must resolve without one.
        assert resolve_prefixed("xml:lang", {}) == QName(XML_NAMESPACE, "lang")

    def test_xml_prefix_ignores_conflicting_declarations(self):
        namespaces = {"xml": "urn:wrong"}
        assert resolve_prefixed("xml:lang", namespaces) == QName(XML_NAMESPACE, "lang")

    def test_xmlns_prefix_rejected(self):
        # 'xmlns' declares namespaces; it can never name an element or
        # attribute.
        with pytest.raises(KeyError):
            resolve_prefixed("xmlns:foo", {"xmlns": "urn:decl"})
