"""Tier-1 wiring for tools/check_perf_regression.py and bench_report history.

The gate grades a fresh ``BENCH_end_to_end.json``-shaped report against the
committed baseline: soft-fail (warn, exit 0) above ``--warn-pct``, hard-fail
(exit 1) above ``--fail-pct``, with a noise floor below which arms are only
reported informationally.  These tests pin the exit-code contract the CI
step relies on.
"""

from __future__ import annotations

import copy
import json
import sys
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent


def _tools():
    sys.path.insert(0, str(ROOT / "tools"))
    try:
        import bench_report
        import check_perf_regression
    finally:
        sys.path.pop(0)
    return check_perf_regression, bench_report


GATE, BENCH = _tools()

BASELINE = {
    "benchmark": "end_to_end_generation",
    "arms": {
        "cold": {"median_ms": 3.0, "schemas": 6, "bytes": 40000, "provenance_records": 90},
        "warm_cache": {"median_ms": 0.1, "schemas": 6, "bytes": 40000, "provenance_records": 90},
    },
}


def _write(path: Path, payload: dict) -> Path:
    path.write_text(json.dumps(payload), encoding="utf-8")
    return path


def _slowed(factor: float) -> dict:
    report = copy.deepcopy(BASELINE)
    for arm in report["arms"].values():
        arm["median_ms"] = round(arm["median_ms"] * factor, 3)
    return report


class TestCompareReports:
    def test_unchanged_report_is_all_ok_or_info(self):
        deltas = GATE.compare_reports(BASELINE, copy.deepcopy(BASELINE))
        assert {delta.status for delta in deltas} <= {"ok", "info"}

    def test_hard_regression_fails(self):
        deltas = GATE.compare_reports(BASELINE, _slowed(3.0))
        by_arm = {delta.arm: delta for delta in deltas}
        assert by_arm["cold"].status == "fail"
        assert by_arm["cold"].delta_pct == pytest.approx(200.0)

    def test_soft_regression_warns(self):
        deltas = GATE.compare_reports(BASELINE, _slowed(1.5))
        assert {d.arm: d.status for d in deltas}["cold"] == "warn"

    def test_noise_floor_skips_grading(self):
        # warm_cache baseline (0.1ms) sits below the 0.25ms floor: even a
        # 3x slowdown is informational, never a gate failure.
        deltas = GATE.compare_reports(BASELINE, _slowed(3.0))
        warm = {d.arm: d for d in deltas}["warm_cache"]
        assert warm.status == "info"
        assert any("noise floor" in note for note in warm.notes)

    def test_new_and_missing_arms(self):
        report = copy.deepcopy(BASELINE)
        report["arms"]["parallel_jobs4"] = {"median_ms": 2.0}
        del report["arms"]["warm_cache"]
        statuses = {d.arm: d.status for d in GATE.compare_reports(BASELINE, report)}
        assert statuses["parallel_jobs4"] == "info"
        assert statuses["warm_cache"] == "warn"

    def test_byte_drift_is_noted_not_failed(self):
        report = copy.deepcopy(BASELINE)
        report["arms"]["cold"]["bytes"] = 41000
        cold = {d.arm: d for d in GATE.compare_reports(BASELINE, report)}["cold"]
        assert cold.status == "ok"
        assert any("bytes changed" in note for note in cold.notes)

    def test_github_annotations(self):
        deltas = GATE.compare_reports(BASELINE, _slowed(3.0))
        text = GATE.render_deltas(deltas, github=True)
        assert "::error title=perf regression::" in text
        deltas = GATE.compare_reports(BASELINE, _slowed(1.5))
        text = GATE.render_deltas(deltas, github=True)
        assert "::warning title=perf soft-fail::" in text


class TestGateExitCodes:
    def test_passes_on_identical_report(self, tmp_path):
        baseline = _write(tmp_path / "baseline.json", BASELINE)
        report = _write(tmp_path / "report.json", copy.deepcopy(BASELINE))
        assert GATE.main(["--baseline", str(baseline), "--report", str(report)]) == 0

    def test_fails_on_injected_slowdown(self, tmp_path):
        baseline = _write(tmp_path / "baseline.json", BASELINE)
        report = _write(tmp_path / "report.json", _slowed(3.0))
        assert GATE.main(["--baseline", str(baseline), "--report", str(report)]) == 1

    def test_soft_fail_keeps_exit_zero(self, tmp_path):
        baseline = _write(tmp_path / "baseline.json", BASELINE)
        report = _write(tmp_path / "report.json", _slowed(1.5))
        assert GATE.main(["--baseline", str(baseline), "--report", str(report)]) == 0

    def test_missing_baseline_passes(self, tmp_path):
        report = _write(tmp_path / "report.json", copy.deepcopy(BASELINE))
        exit_code = GATE.main(
            ["--baseline", str(tmp_path / "absent.json"), "--report", str(report)]
        )
        assert exit_code == 0

    def test_missing_report_errors(self, tmp_path):
        baseline = _write(tmp_path / "baseline.json", BASELINE)
        exit_code = GATE.main(
            ["--baseline", str(baseline), "--report", str(tmp_path / "absent.json")]
        )
        assert exit_code == 2

    def test_inverted_tolerances_error(self, tmp_path):
        baseline = _write(tmp_path / "baseline.json", BASELINE)
        report = _write(tmp_path / "report.json", copy.deepcopy(BASELINE))
        exit_code = GATE.main(
            [
                "--baseline", str(baseline), "--report", str(report),
                "--warn-pct", "200", "--fail-pct", "100",
            ]
        )
        assert exit_code == 2

    def test_committed_baseline_passes_against_itself(self):
        baseline = ROOT / "BENCH_end_to_end.json"
        assert baseline.exists()
        assert GATE.main(["--baseline", str(baseline), "--report", str(baseline)]) == 0


class TestHistoryTrajectory:
    def test_append_history_accretes_stamped_lines(self, tmp_path):
        history = tmp_path / "history.jsonl"
        BENCH.append_history(history, copy.deepcopy(BASELINE))
        BENCH.append_history(history, copy.deepcopy(BASELINE))
        lines = history.read_text(encoding="utf-8").splitlines()
        assert len(lines) == 2
        for line in lines:
            entry = json.loads(line)
            assert entry["arms"] == BASELINE["arms"]
            assert "recorded_at" in entry
