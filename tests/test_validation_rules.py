"""Every validation rule must fire on a crafted violation and stay silent
on the clean catalog models."""

import pytest

from repro.ccts.derivation import derive_abie
from repro.ccts.model import CctsModel
from repro.profile import ABIE, ASBIE, BBIE, BCC, CON
from repro.uml.association import AggregationKind
from repro.validation import validate_model
from repro.validation.engine import default_engine


def _codes(report):
    return {diagnostic.code for diagnostic in report.diagnostics}


@pytest.fixture
def clean():
    """A minimal fully valid model to mutate per test."""
    model = CctsModel("Clean")
    business = model.add_business_library("B", "urn:clean")
    prims = business.add_prim_library("Prims")
    string = prims.add_primitive("String").element
    cdts = business.add_cdt_library("Cdts")
    text = cdts.add_cdt("Text")
    text.set_content(string)
    code = cdts.add_cdt("Code")
    code.set_content(string)
    ccs = business.add_cc_library("Ccs")
    thing = ccs.add_acc("Thing")
    thing.add_bcc("Name", text, "0..1")
    other = ccs.add_acc("Other")
    other.add_bcc("Name", text, "0..1")
    thing.add_ascc("Linked", other, "0..1")
    bies = business.add_bie_library("Bies")
    other_abie = derive_abie(bies, other)
    other_abie.include("Name", "0..1")
    thing_abie = derive_abie(bies, thing)
    thing_abie.include("Name", "0..1")
    thing_abie.connect("Linked", other_abie.abie, "0..1", based_on="Linked")
    return model, business, prims, string, cdts, text, code, ccs, thing, other, bies, thing_abie, other_abie


class TestCleanModels:
    def test_clean_fixture_is_clean(self, clean):
        report = validate_model(clean[0])
        assert report.ok and not report.warnings

    def test_catalog_models_have_no_errors(self, easybiz, figure1, ecommerce):
        for wrapper in (easybiz, figure1, ecommerce):
            assert validate_model(wrapper.model).ok

    def test_rule_codes_are_unique_and_stable(self):
        engine = default_engine()
        codes = engine.rule_codes()
        assert len(codes) == len(set(codes))
        assert len(codes) >= 25


class TestStructureRules:
    def test_p01_unknown_stereotype(self, clean):
        model, _, _, _, _, text, *_ = clean
        text.element.apply_stereotype("Sparkly")
        assert "UPCC-P01" in _codes(validate_model(model))

    def test_p02_bcc_outside_acc(self, clean):
        model, _, _, string, cdts, text, *_ = clean
        text.element.add_attribute("Wrong", string, "1", stereotype=BCC)
        assert "UPCC-P02" in _codes(validate_model(model))

    def test_p03_untyped_property(self, clean):
        model, *_ , ccs, thing, other, bies, thing_abie, other_abie = clean
        thing.element.add_attribute("Mystery", None, "1", stereotype=BCC)
        assert "UPCC-P03" in _codes(validate_model(model))

    def test_p04_ascc_to_non_acc(self, clean):
        model, _, _, _, _, _, _, ccs, thing, *_ = clean
        plain = ccs.package.add_class("Plain")
        ccs.package.add_association(thing.element, plain, "Bad", stereotype="ASCC")
        assert "UPCC-P04" in _codes(validate_model(model))

    def test_p05_missing_role_name(self, clean):
        model, *_ , ccs, thing, other, bies, thing_abie, other_abie = clean
        ccs.package.add_association(thing.element, other.element, "", stereotype="ASCC")
        assert "UPCC-P05" in _codes(validate_model(model))

    def test_p06_mixed_layers(self, clean):
        model, *_, ccs, thing, other, bies, thing_abie, other_abie = clean
        thing.element.apply_stereotype(ABIE)
        codes = _codes(validate_model(model))
        assert "UPCC-P06" in codes


class TestDataTypeRules:
    def test_d01_cdt_without_content(self, clean):
        model, _, _, _, cdts, *_ = clean
        cdts.add_cdt("Hollow")
        assert "UPCC-D01" in _codes(validate_model(model))

    def test_d01_cdt_with_two_contents(self, clean):
        model, _, _, string, cdts, text, *_ = clean
        text.element.add_attribute("Second", string, "1", stereotype=CON)
        assert "UPCC-D01" in _codes(validate_model(model))

    def test_d02_qdt_without_content(self, clean):
        model, business, *_ = clean
        qdts = business.add_qdt_library("Qdts")
        qdts.add_qdt("Hollow")
        assert "UPCC-D02" in _codes(validate_model(model))

    def test_d03_qdt_with_foreign_sup(self, clean):
        model, business, _, string, cdts, text, code, *_ = clean
        qdts = business.add_qdt_library("Qdts")
        qdt = qdts.add_qdt("Weird")
        qdt.element.add_attribute("Content", string, "1", stereotype="CON")
        qdt.element.add_attribute("Invented", string, "1", stereotype="SUP")
        qdts.package.add_dependency(qdt.element, code.element, stereotype="basedOn")
        assert "UPCC-D03" in _codes(validate_model(model))

    def test_d04_component_typed_by_cdt(self, clean):
        model, _, _, _, cdts, text, code, *_ = clean
        code.add_supplementary("Nested", text.element, "1")
        assert "UPCC-D04" in _codes(validate_model(model))

    def test_d05_empty_enum_warns(self, clean):
        model, business, *_ = clean
        enums = business.add_enum_library("Enums")
        enums.add_enumeration("Empty_Code")
        report = validate_model(model)
        assert "UPCC-D05" in _codes(report)
        assert report.ok  # warning, not error

    def test_d07_unknown_primitive_warns(self, clean):
        model, _, prims, *_ = clean
        prims.add_primitive("Quaternion")
        report = validate_model(model)
        assert "UPCC-D07" in _codes(report)
        assert report.ok

    def test_d09_widened_sup_warns(self, clean):
        model, business, _, string, cdts, text, code, *_ = clean
        code.add_supplementary("Must", string, "1")
        qdts = business.add_qdt_library("Qdts")
        from repro.ccts.derivation import derive_qdt

        derive_qdt(qdts, code, "Loose", {"Must": "0..1"})
        report = validate_model(model)
        assert "UPCC-D09" in _codes(report)
        assert report.ok


class TestComponentRules:
    def test_c01_bcc_typed_by_non_cdt(self, clean):
        model, _, prims, string, _, _, _, ccs, thing, *_ = clean
        prim_wrapper = type("W", (), {"element": string})
        thing.element.add_attribute("Raw", string, "1", stereotype=BCC)
        assert "UPCC-C01" in _codes(validate_model(model))

    def test_c02_empty_acc_warns(self, clean):
        model, *_ , ccs, thing, other, bies, thing_abie, other_abie = clean
        ccs.add_acc("Void")
        report = validate_model(model)
        assert "UPCC-C02" in _codes(report)
        assert report.ok

    def test_c03_duplicate_role_and_target(self, clean):
        model, *_, ccs, thing, other, bies, thing_abie, other_abie = clean
        thing.add_ascc("Linked", other, "0..1")  # same role+target again
        assert "UPCC-C03" in _codes(validate_model(model))

    def test_c03_same_role_different_target_allowed(self, clean):
        model, _, _, _, cdts, text, _, ccs, thing, other, *_ = clean
        third = ccs.add_acc("Third")
        third.add_bcc("Name", text, "0..1")
        thing.add_ascc("Linked", third, "0..1")
        codes = _codes(validate_model(model))
        assert "UPCC-C03" not in codes

    def test_c05_composition_cycle_warns(self, clean):
        model, *_, ccs, thing, other, bies, thing_abie, other_abie = clean
        other.add_ascc("Back", thing, "0..1", AggregationKind.COMPOSITE)
        report = validate_model(model)
        assert "UPCC-C05" in _codes(report)
        assert report.ok


class TestBieRules:
    def test_b01_orphan_abie(self, clean):
        model, *_, bies, thing_abie, other_abie = clean
        bies.add_abie("Orphan")
        assert "UPCC-B01" in _codes(validate_model(model))

    def test_b02_widened_bbie(self, clean):
        model, _, _, _, _, text, _, ccs, thing, other, bies, thing_abie, other_abie = clean
        other_abie.abie.element.add_attribute("Extra", text.element, "1..*", stereotype=BBIE)
        assert "UPCC-B02" in _codes(validate_model(model))

    def test_b03_bbie_typed_by_primitive(self, clean):
        model, _, _, string, _, _, _, _, thing, other, bies, thing_abie, other_abie = clean
        other_abie.abie.element.add_attribute("Raw", string, "0..1", stereotype=BBIE)
        codes = _codes(validate_model(model))
        assert "UPCC-B03" in codes

    def test_b04_duplicate_asbie(self, clean):
        model, *_, bies, thing_abie, other_abie = clean
        thing_abie.abie.add_asbie("Linked", other_abie.abie, "0..1")
        assert "UPCC-B04" in _codes(validate_model(model))

    def test_b05_colliding_compound_names(self, clean):
        model, _, _, _, cdts, text, _, ccs, thing, other, bies, thing_abie, other_abie = clean
        # A BBIE named exactly like the ASBIE compound name "LinkedOther".
        thing.add_bcc("LinkedOther", text, "0..1")
        thing_abie.include("LinkedOther", "0..1")
        assert "UPCC-B05" in _codes(validate_model(model))

    def test_b06_empty_doc_library(self, clean):
        model, business, *_ = clean
        business.add_doc_library("EmptyDoc")
        assert "UPCC-B06" in _codes(validate_model(model))


class TestLibraryAndNamingRules:
    def test_l01_missing_base_urn(self, clean):
        model, business, *_ = clean
        library = business.add_bie_library("NoUrn")
        library.element.stereotype_applications[library.stereotype].pop("baseURN")
        assert "UPCC-L01" in _codes(validate_model(model))

    def test_l02_wrong_content_kind(self, clean):
        model, _, _, _, cdts, *_ = clean
        cdts.package.add_class("Smuggled", stereotype=ABIE)
        assert "UPCC-L02" in _codes(validate_model(model))

    def test_l04_duplicate_prefix_warns(self, clean):
        model, business, *_ = clean
        business.add_bie_library("One", namespacePrefix="shared")
        business.add_bie_library("Two", namespacePrefix="shared")
        report = validate_model(model)
        assert "UPCC-L04" in _codes(report)
        assert report.ok

    def test_l05_homeless_acc_warns(self, clean):
        model, *_ = clean
        loose = model.model.add_package("Loose")
        loose.add_class("Stray", stereotype="ACC")
        report = validate_model(model)
        assert "UPCC-L05" in _codes(report)

    def test_n01_unusable_name(self, clean):
        model, _, _, _, cdts, *_ = clean
        cdts.package.add_data_type("!!!", stereotype="CDT")
        assert "UPCC-N01" in _codes(validate_model(model))

    def test_n02_unrelated_abie_name_warns(self, clean):
        model, *_, ccs, thing, other, bies, thing_abie, other_abie = clean
        stranger = derive_abie(bies, thing, name="CompletelyDifferent")
        report = validate_model(model)
        assert "UPCC-N02" in _codes(report)
        assert report.ok

    def test_n04_library_name_with_colon(self, clean):
        model, business, *_ = clean
        business.add_bie_library("bad:name")
        assert "UPCC-N04" in _codes(validate_model(model))


class TestBasicSubset:
    def test_basic_only_skips_non_basic_rules(self, clean):
        model, business, *_ = clean
        enums = business.add_enum_library("Enums")
        enums.add_enumeration("Empty_Code")  # D05 is non-basic
        report = validate_model(model, basic_only=True)
        assert "UPCC-D05" not in _codes(report)

    def test_basic_only_keeps_errors(self, clean):
        model, *_, bies, thing_abie, other_abie = clean
        bies.add_abie("Orphan")
        report = validate_model(model, basic_only=True)
        assert "UPCC-B01" in _codes(report)


class TestNewStructureRules:
    def test_p07_mismatched_based_on(self, clean):
        model, *_ , ccs, thing, other, bies, thing_abie, other_abie = clean
        # An ABIE basedOn a CDT is nonsense and must be flagged.
        abie = bies.add_abie("Confused")
        cdt = model.cdt_libraries()[0].cdt("Text")
        bies.package.add_dependency(abie.element, cdt.element, stereotype="basedOn")
        assert "UPCC-P07" in _codes(validate_model(model))

    def test_p07_clean_pairs_pass(self, clean):
        model, *_ = clean
        report = validate_model(model)
        assert "UPCC-P07" not in {d.code for d in report.errors}

    def test_l06_classifier_in_business_library(self, clean):
        model, business, *_ = clean
        business.package.add_class("Stray")
        assert "UPCC-L06" in _codes(validate_model(model))

    def test_l06_unstereotyped_subpackage_warns(self, clean):
        model, business, *_ = clean
        business.package.add_package("JustAFolder")
        report = validate_model(model)
        assert "UPCC-L06" in _codes(report)
        assert report.ok
