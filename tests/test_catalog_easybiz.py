"""Figure 4: the EasyBiz model census and structure."""

from repro.catalog.easybiz import (
    APPLICATION_BCCS,
    COUNCIL_LITERALS,
    COUNTRY_LITERALS,
)
from repro.catalog.primitives import FIGURE4_PRIMITIVES
from repro.uml.visitor import census
from repro.validation import validate_model


class TestLibraryInventory:
    def test_eight_libraries_present(self, easybiz):
        names = {library.name for library in easybiz.model.libraries()
                 if library.stereotype != "BusinessLibrary"}
        assert names == {
            "Primitives", "EnumerationTypes", "coredatatypes", "CommonDataTypes",
            "CandidateCoreComponents", "CommonAggregates", "LocalLawAggregates",
            "EB005-HoardingPermit",
        }

    def test_common_aggregates_has_user_prefix(self, easybiz):
        assert easybiz.common_aggregates.namespace_prefix == "commonAggregates"

    def test_local_law_has_no_user_prefix(self, easybiz):
        assert easybiz.local_law_aggregates.namespace_prefix is None


class TestPackage5CoreComponents:
    def test_application_acc_has_eleven_bccs(self, easybiz):
        application = easybiz.model.acc("Application")
        assert len(application.bccs) == 11
        assert [bcc.name for bcc in application.bccs] == [name for name, _, _ in APPLICATION_BCCS]

    def test_application_applicant_ascc(self, easybiz):
        applicant = easybiz.model.acc("Application").ascc("Applicant")
        assert applicant.target.name == "Party"

    def test_attachment_acc_shape(self, easybiz):
        attachment = easybiz.model.acc("Attachment")
        assert [bcc.name for bcc in attachment.bccs] == ["Description", "File", "Location", "Size"]

    def test_party_acc_shape(self, easybiz):
        party = easybiz.model.acc("Party")
        assert [bcc.name for bcc in party.bccs] == ["Description", "Role", "Type"]


class TestPackage2CommonAggregates:
    def test_application_abie_restriction_keeps_two(self, easybiz):
        application = easybiz.common_aggregates.abie("Application")
        assert [bbie.name for bbie in application.bbies] == ["CreatedDate", "Type"]

    def test_signature_abie_shape(self, easybiz):
        signature = easybiz.common_aggregates.abie("Signature")
        assert [bbie.name for bbie in signature.bbies] == ["Date", "PersonName", "SignatureData"]

    def test_address_country_name_is_qdt(self, easybiz):
        address = easybiz.common_aggregates.abie("Address")
        country_name = address.bbie("CountryName")
        assert country_name.data_type.name == "CountryType"
        assert country_name.data_type.element.has_stereotype("QDT")

    def test_person_identification_asbies(self, easybiz):
        from repro.uml.association import AggregationKind

        person = easybiz.common_aggregates.abie("Person_Identification")
        assert person.asbie("Personal").aggregation is AggregationKind.COMPOSITE
        assert person.asbie("Assigned").aggregation is AggregationKind.SHARED


class TestPackage3And6DataTypes:
    def test_qdts_based_on_code(self, easybiz):
        for name in ("CountryType", "CouncilType"):
            qdt = next(q for q in easybiz.qdt_library.qdts if q.name == name)
            assert qdt.based_on.name == "Code"
            assert [s.name for s in qdt.supplementary_components] == ["CodeListName"]

    def test_enum_literals_match_figure(self, easybiz):
        country = easybiz.enum_library.enumeration("CountryType_Code")
        assert country.literal_names == list(COUNTRY_LITERALS)
        assert country.literals[0].value == "United States of America"
        council = easybiz.enum_library.enumeration("CouncilType_Code")
        assert council.literal_names == list(COUNCIL_LITERALS)

    def test_code_cdt_shape_matches_figure4_package4(self, easybiz):
        code = easybiz.cdt_library.cdt("Code")
        content = code.content_component
        assert content.element.name == "Content"
        assert content.element.type.name == "String"
        assert [s.name for s in code.supplementary_components] == [
            "CodeListAgName", "CodeListName", "CodeListSchemeURI", "LanguageIdentifier",
        ]
        assert str(code.supplementary("LanguageIdentifier").multiplicity) == "0..1"

    def test_figure4_primitives_present(self, easybiz):
        names = {p.name for p in easybiz.prim_library.primitives}
        assert set(FIGURE4_PRIMITIVES) <= names


class TestPackage1DocLibrary:
    def test_hoarding_permit_bbies(self, easybiz):
        assert [b.name for b in easybiz.hoarding_permit.bbies] == [
            "ClosureReason", "IsClosedFootpath", "IsClosedRoad", "SafetyPrecaution",
        ]

    def test_four_asbies_with_paper_roles(self, easybiz):
        asbies = [(a.role, a.target.name) for a in easybiz.hoarding_permit.asbies]
        assert asbies == [
            ("Included", "Attachment"),
            ("Current", "Application"),
            ("Included", "Registration"),
            ("Billing", "Person_Identification"),
        ]

    def test_hoarding_details_defined_but_unwired(self, easybiz):
        details = easybiz.doc_library.abie("HoardingDetails")
        assert [b.name for b in details.bbies] == ["Description"]
        assert details.asbies == []

    def test_component_set_listing(self, easybiz):
        entries = easybiz.hoarding_permit.component_set()
        assert "HoardingPermit (ABIE)" in entries
        assert "HoardingPermit.Billing.Person_Identification (ASBIE)" in entries


class TestCensusAndHealth:
    def test_census(self, easybiz):
        counts = census(easybiz.model.model)
        assert counts["ABIE"] == 8  # 5 CommonAggregates + Registration + 2 DOC
        assert counts["ACC"] == 9
        assert counts["QDT"] == 4
        assert counts["ENUM"] == 2
        assert counts["ASBIE"] == 6
        assert counts["DOCLibrary"] == 1
        assert counts["BIELibrary"] == 2

    def test_model_validates_with_only_known_warnings(self, easybiz):
        report = validate_model(easybiz.model)
        assert report.ok
        assert {d.code for d in report.warnings} <= {"UPCC-D09"}
