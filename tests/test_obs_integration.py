"""End-to-end observability: instrumented pipeline, logging bridge, CLI."""

import json
import logging

import pytest

import repro.obs as obs
from repro.cli import main
from repro.obs.metrics import MetricsRegistry, set_registry
from repro.obs.trace import Tracer, set_tracer
from repro.validation import validate_model
from repro.xsdgen import SchemaGenerator


@pytest.fixture
def fresh_obs():
    """Fresh global tracer + registry, configured for tracing; restored after."""
    previous_tracer = set_tracer(Tracer(enabled=False))
    previous_registry = set_registry(MetricsRegistry())
    tracer = obs.configure(trace=True)
    try:
        yield tracer
    finally:
        obs.unwire_logging()
        set_tracer(previous_tracer)
        set_registry(previous_registry)


class TestPipelineSpans:
    def test_generation_emits_expected_span_tree(self, fresh_obs, easybiz):
        SchemaGenerator(easybiz.model).generate(easybiz.doc_library, root="HoardingPermit")
        roots = list(fresh_obs.ring_buffer().roots)
        assert [root.name for root in roots] == ["xsdgen.generate"]
        tree = roots[0]
        # One xsdgen.library span per generated schema, nested by imports.
        libraries = {s.attributes["library"] for s in tree.find("xsdgen.library")}
        assert libraries == {
            "EB005-HoardingPermit",
            "coredatatypes",
            "CommonDataTypes",
            "EnumerationTypes",
            "CommonAggregates",
            "LocalLawAggregates",
        }
        # Builder spans sit under their library spans.
        assert tree.find("xsdgen.build.doc")
        assert tree.find("xsdgen.build.bie")
        assert tree.find("xsdgen.build.cdt")
        assert tree.find("xsdgen.build.qdt")
        assert tree.find("xsdgen.build.enum")
        # Pre-generation validation ran under the same root.
        assert tree.find("validation.run")
        assert all(s.status == "ok" for s, _ in tree.walk())

    def test_second_run_hits_the_memo(self, fresh_obs, easybiz):
        generator = SchemaGenerator(easybiz.model)
        generator.generate(easybiz.doc_library, root="HoardingPermit")
        hits_after_first = obs.get_metrics().snapshot()["xsdgen.memo_hits"]
        generator.generate(easybiz.doc_library, root="HoardingPermit")
        snapshot = obs.get_metrics().snapshot()
        assert snapshot["xsdgen.memo_hits"] > hits_after_first
        # The memoized second run generates no new schemas.
        assert snapshot["xsdgen.schemas_generated"] == 6

    def test_generation_metrics_are_populated(self, fresh_obs, easybiz):
        result = SchemaGenerator(easybiz.model).generate(
            easybiz.doc_library, root="HoardingPermit"
        )
        snapshot = obs.get_metrics().snapshot()
        assert snapshot["xsdgen.schemas_generated"] == len(result.schemas) == 6
        assert snapshot["xsdgen.imports_resolved"] > 0
        assert snapshot["validation.rules_fired"] > 0
        rule_timers = [key for key in snapshot if key.startswith("validation.rule_ms{rule=")]
        assert rule_timers, "per-rule validation.rule_ms histograms missing"
        assert all(snapshot[key]["count"] >= 1 for key in rule_timers)

    def test_validation_findings_counted_by_severity(self, fresh_obs):
        from repro.ccts.model import CctsModel

        model = CctsModel("Bad")
        business = model.add_business_library("B", "urn:bad")
        business.add_bie_library("L").add_abie("Orphan")
        report = validate_model(model)
        assert not report.ok
        snapshot = obs.get_metrics().snapshot()
        assert snapshot["validation.findings{severity=error}"] >= 1

    def test_error_spans_record_generation_failures(self, fresh_obs, easybiz):
        from repro.errors import GenerationError

        generator = SchemaGenerator(easybiz.model)
        with pytest.raises(GenerationError):
            generator.generate(easybiz.prim_library)
        roots = list(fresh_obs.ring_buffer().roots)
        assert roots[-1].status == "error"
        assert "GenerationError" in roots[-1].error


class TestXmiSpans:
    def test_read_xmi_counts_elements(self, fresh_obs, easybiz, tmp_path):
        from repro.xmi import read_xmi, write_xmi

        path = tmp_path / "m.xmi"
        write_xmi(easybiz.model.model, path)
        read_xmi(path.read_text(encoding="utf-8"))
        snapshot = obs.get_metrics().snapshot()
        assert snapshot["xmi.elements_parsed"] > 0
        assert snapshot["xmi.bytes_read"] > 0
        names = {root.name for root in fresh_obs.ring_buffer().roots}
        assert "xmi.read" in names


class TestLoggingBridge:
    def test_pipeline_logs_flow_into_sinks(self, fresh_obs, easybiz):
        captured = []

        class Capture(obs.SpanSink):
            def on_log(self, logger_name, level, message):
                captured.append((logger_name, level, message))

        fresh_obs.add_sink(Capture())
        obs.wire_logging(fresh_obs)
        SchemaGenerator(easybiz.model).generate(easybiz.doc_library, root="HoardingPermit")
        loggers = {name for name, _, _ in captured}
        assert "repro.xsdgen" in loggers
        assert "repro.validation" in loggers

    def test_get_logger_installs_null_handler(self):
        root = logging.getLogger("repro")
        logger = obs.get_logger("repro.xsdgen")
        assert logger.name == "repro.xsdgen"
        assert any(isinstance(h, logging.NullHandler) for h in root.handlers)

    def test_wire_and_unwire_are_idempotent(self, fresh_obs):
        obs.wire_logging(fresh_obs)
        obs.wire_logging(fresh_obs)
        root = logging.getLogger("repro")
        handlers = [h for h in root.handlers if isinstance(h, obs.TraceSinkHandler)]
        assert len(handlers) == 1
        obs.unwire_logging()
        assert not any(isinstance(h, obs.TraceSinkHandler) for h in root.handlers)


class TestCliObservability:
    @pytest.fixture
    def xmi_file(self, tmp_path):
        path = tmp_path / "easybiz.xmi"
        assert main(["example", "easybiz", "--out", str(path)]) == 0
        return path

    @pytest.fixture(autouse=True)
    def _restore_globals(self):
        previous_tracer = set_tracer(Tracer(enabled=False))
        previous_registry = set_registry(MetricsRegistry())
        try:
            yield
        finally:
            obs.unwire_logging()
            set_tracer(previous_tracer)
            set_registry(previous_registry)

    def test_trace_and_metrics_out_flags(self, xmi_file, tmp_path, capsys):
        metrics_path = tmp_path / "m.json"
        code = main([
            "--trace", "--metrics-out", str(metrics_path),
            "generate", str(xmi_file),
            "--library", "EB005-HoardingPermit", "--root", "HoardingPermit",
            "--out", str(tmp_path / "schemas"),
        ])
        assert code == 0
        err = capsys.readouterr().err
        assert "== span tree ==" in err
        assert "xsdgen.generate" in err
        assert "xsdgen.library" in err
        snapshot = json.loads(metrics_path.read_text(encoding="utf-8"))
        assert snapshot["xsdgen.schemas_generated"] == 6
        assert any(key.startswith("validation.rule_ms{rule=") for key in snapshot)

    def test_stats_subcommand(self, capsys):
        assert main(["stats", "easybiz", "--runs", "2"]) == 0
        out = capsys.readouterr().out
        assert "== span tree ==" in out
        assert "== metrics ==" in out
        assert "xsdgen.generate" in out
        assert "xsdgen.memo_hits" in out
        assert "validation.rule_ms{rule=" in out

    def test_metrics_out_without_trace(self, xmi_file, tmp_path):
        metrics_path = tmp_path / "m.json"
        assert main([
            "--metrics-out", str(metrics_path),
            "validate", str(xmi_file),
        ]) == 0
        snapshot = json.loads(metrics_path.read_text(encoding="utf-8"))
        assert snapshot["validation.rules_fired"] > 0
