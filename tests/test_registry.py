"""Unit tests for the file-based registry."""

import pytest

from repro.errors import RegistryError
from repro.interchange import diff_models
from repro.registry import Registry


@pytest.fixture
def registry(tmp_path):
    return Registry(tmp_path / "reg")


class TestStoreAndLoad:
    def test_store_creates_xmi_and_index(self, registry, figure1, tmp_path):
        entry = registry.store("figure1", figure1.model)
        assert (registry.directory / entry.file).exists()
        assert (registry.directory / "index.json").exists()

    def test_load_round_trips(self, registry, figure1):
        registry.store("figure1", figure1.model)
        loaded = registry.load("figure1")
        assert diff_models(figure1.model, loaded) == []

    def test_duplicate_store_rejected(self, registry, figure1):
        registry.store("figure1", figure1.model)
        with pytest.raises(RegistryError):
            registry.store("figure1", figure1.model)

    def test_overwrite_allowed(self, registry, figure1):
        registry.store("figure1", figure1.model)
        registry.store("figure1", figure1.model, overwrite=True)
        assert len(registry.entries()) == 1

    def test_load_unknown_rejected(self, registry):
        with pytest.raises(RegistryError):
            registry.load("nope")

    def test_remove(self, registry, figure1):
        entry = registry.store("figure1", figure1.model)
        registry.remove("figure1")
        assert registry.entries() == []
        assert not (registry.directory / entry.file).exists()
        with pytest.raises(RegistryError):
            registry.remove("figure1")

    def test_index_survives_reopen(self, registry, figure1):
        registry.store("figure1", figure1.model)
        reopened = Registry(registry.directory)
        assert [entry.name for entry in reopened.entries()] == ["figure1"]
        assert diff_models(figure1.model, reopened.load("figure1")) == []


class TestSearch:
    def test_search_by_den(self, registry, figure1):
        registry.store("figure1", figure1.model)
        hits = registry.search("Person")
        assert hits
        assert all("Person" in den for _, den in hits)

    def test_search_is_case_insensitive(self, registry, figure1):
        registry.store("figure1", figure1.model)
        assert registry.search("person") == registry.search("PERSON")

    def test_search_across_models(self, registry, figure1, easybiz):
        registry.store("figure1", figure1.model)
        registry.store("easybiz", easybiz.model)
        names = {name for name, _ in registry.search("Address")}
        assert names == {"easybiz", "figure1"}

    def test_search_miss(self, registry, figure1):
        registry.store("figure1", figure1.model)
        assert registry.search("Blockchain") == []

    def test_libraries_listing(self, registry, easybiz):
        registry.store("easybiz", easybiz.model)
        docs = registry.libraries("DOCLibrary")
        assert [(name, lib["name"]) for name, lib in docs] == [("easybiz", "EB005-HoardingPermit")]
        assert len(registry.libraries()) == 8

    def test_entry_metadata(self, registry, easybiz):
        entry = registry.store("easybiz", easybiz.model)
        kinds = {library["kind"] for library in entry.libraries}
        assert "CDTLibrary" in kinds and "DOCLibrary" in kinds
        assert any(den.startswith("Hoarding Permit.") for den in entry.dictionary_entries)


class TestVersioning:
    def test_versioned_store_and_load(self, registry, figure1):
        registry.store("m", figure1.model, version="1.0")
        from repro.catalog import build_figure1_model

        evolved = build_figure1_model()
        evolved.person.add_bcc("MiddleName", evolved.cdt_library.cdt("Text"), "0..1")
        registry.store("m", evolved.model, version="1.1")
        assert registry.versions_of("m") == ["1.0", "1.1"]
        v1 = registry.load("m", version="1.0")
        v2 = registry.load("m", version="1.1")
        assert len(v1.acc("Person").bccs) == 2
        assert len(v2.acc("Person").bccs) == 3

    def test_bare_name_tracks_latest(self, registry, figure1):
        registry.store("m", figure1.model, version="1.0")
        from repro.catalog import build_figure1_model

        evolved = build_figure1_model()
        evolved.person.add_bcc("MiddleName", evolved.cdt_library.cdt("Text"), "0..1")
        registry.store("m", evolved.model, version="1.1")
        latest = registry.load("m")
        assert len(latest.acc("Person").bccs) == 3

    def test_duplicate_version_rejected(self, registry, figure1):
        registry.store("m", figure1.model, version="1.0")
        with pytest.raises(RegistryError):
            registry.store("m", figure1.model, version="1.0")

    def test_unknown_version_rejected(self, registry, figure1):
        registry.store("m", figure1.model, version="1.0")
        with pytest.raises(RegistryError):
            registry.load("m", version="9.9")

    def test_versions_survive_reopen(self, registry, figure1):
        registry.store("m", figure1.model, version="1.0")
        reopened = Registry(registry.directory)
        assert reopened.versions_of("m") == ["1.0"]
