"""Strict vs lenient XMI loading over the malformed corpus.

Every file under tests/corpus/malformed/ exercises one defect family.
Strict mode must fail fast with a located error; lenient mode must load
whatever is sound and report every defect as a :class:`LoadIssue`.
"""

import xml.etree.ElementTree as ET
from pathlib import Path

import pytest

from repro.errors import XmiError
from repro.xmi import (
    DEFAULT_MAX_DEPTH,
    DEFAULT_MAX_ELEMENTS,
    LoadIssue,
    LoadResult,
    load_xmi,
    read_xmi,
)

CORPUS = Path(__file__).parent / "corpus" / "malformed"

#: file name -> the exact set of issue kinds lenient loading must report.
EXPECTED_KINDS = {
    "truncated.xmi": {"xml-syntax"},
    "duplicate_ids.xmi": {"duplicate-id"},
    "dangling_refs.xmi": {
        "dangling-type-ref",
        "dangling-end-ref",
        "dangling-dependency-ref",
    },
    "bad_multiplicity.xmi": {"bad-multiplicity"},
    "unknown_stereotype_base.xmi": {
        "unknown-element",
        "missing-id",
        "dangling-stereotype-base",
    },
}

XMI_HEAD = (
    '<?xml version="1.0" encoding="UTF-8"?>\n'
    '<xmi:XMI xmlns:xmi="http://www.omg.org/XMI"'
    ' xmlns:uml="http://www.omg.org/spec/UML/20090901"'
    ' xmlns:upcc="urn:un:unece:uncefact:profile:upcc:1.0" xmi:version="2.1">\n'
)


def wrap(body: str) -> str:
    return (
        XMI_HEAD
        + f'  <uml:Model xmi:id="id_1" name="M">\n{body}\n  </uml:Model>\n</xmi:XMI>\n'
    )


class TestCorpusLenient:
    @pytest.mark.parametrize("name", sorted(EXPECTED_KINDS))
    def test_every_file_loads_without_raising(self, name):
        result = load_xmi(CORPUS / name)
        assert isinstance(result, LoadResult)
        assert not result.ok
        assert {issue.kind for issue in result.issues} == EXPECTED_KINDS[name]

    @pytest.mark.parametrize("name", sorted(EXPECTED_KINDS))
    def test_every_issue_is_located(self, name):
        result = load_xmi(CORPUS / name)
        for issue in result.issues:
            assert issue.line is not None, issue
            assert issue.column is not None, issue

    def test_truncated_document_has_no_model(self):
        result = load_xmi(CORPUS / "truncated.xmi")
        assert result.model is None
        assert "not well-formed" in result.issues[0].message

    def test_recoverable_files_still_produce_a_model(self):
        for name in sorted(EXPECTED_KINDS):
            if name == "truncated.xmi":
                continue
            result = load_xmi(CORPUS / name)
            assert result.model is not None, name

    def test_sound_content_survives_dangling_refs(self):
        result = load_xmi(CORPUS / "dangling_refs.xmi")
        model = result.model
        person = model.find_classifier_anywhere("Person")
        assert person.attributes[0].type.name == "String"
        # The association with the dangling end and the dependency with the
        # dangling supplier were both withdrawn from their owning package.
        package = person.owner
        assert package.associations == []
        assert package.dependencies == []

    def test_bad_multiplicity_repaired_to_placeholder(self):
        result = load_xmi(CORPUS / "bad_multiplicity.xmi")
        address = result.model.find_classifier_anywhere("Address")
        for prop in address.attributes:
            assert (prop.multiplicity.lower, prop.multiplicity.upper) == (0, None)

    def test_duplicate_id_keeps_first_registration(self):
        result = load_xmi(CORPUS / "duplicate_ids.xmi")
        # Both classes stay in the model; references to the shared id keep
        # resolving to the first one.
        names = [c.name for p in result.model.packages for c in p.classifiers]
        assert "Address" in names and "Person" in names

    def test_issue_str_mentions_id_path_and_position(self):
        result = load_xmi(CORPUS / "duplicate_ids.xmi")
        text = str(result.issues[0])
        assert "[duplicate-id]" in text
        assert "xmi:id=id_5" in text
        assert "path=" in text and "line" in text

    def test_summary_counts_issues(self):
        result = load_xmi(CORPUS / "dangling_refs.xmi")
        assert result.summary() == "DanglingRefs: 3 issue(s)"


class TestCorpusStrict:
    def test_truncated_raises_parse_error_with_position(self):
        with pytest.raises(ET.ParseError) as excinfo:
            read_xmi(CORPUS / "truncated.xmi")
        assert excinfo.value.position[0] == 6

    @pytest.mark.parametrize(
        ("name", "match"),
        [
            ("duplicate_ids.xmi", "duplicate xmi:id"),
            ("dangling_refs.xmi", "non-classifier id"),
            ("bad_multiplicity.xmi", "invalid multiplicity"),
            ("unknown_stereotype_base.xmi", "unsupported packagedElement"),
        ],
    )
    def test_strict_raises_located_xmi_error(self, name, match):
        with pytest.raises(XmiError, match=match) as excinfo:
            read_xmi(CORPUS / name)
        error = excinfo.value
        assert error.line is not None
        assert error.column is not None

    def test_strict_error_location_points_at_offender(self):
        with pytest.raises(XmiError) as excinfo:
            read_xmi(CORPUS / "duplicate_ids.xmi")
        error = excinfo.value
        assert error.xmi_id == "id_5"
        assert error.path.endswith("Address/Town")
        assert error.line == 8

    def test_load_xmi_strict_matches_read_xmi(self):
        with pytest.raises(XmiError, match="duplicate xmi:id"):
            load_xmi(CORPUS / "duplicate_ids.xmi", strict=True)


class TestRecoverySatellites:
    def test_missing_end_type_strict_names_the_end(self):
        body = (
            '    <packagedElement xmi:type="uml:Association" xmi:id="id_2">\n'
            '      <ownedEnd xmi:id="id_3" lower="1" upper="1"/>\n'
            '      <ownedEnd xmi:id="id_4" type="id_1" lower="1" upper="1"/>\n'
            "    </packagedElement>"
        )
        with pytest.raises(XmiError, match="'id_3' lacks a type reference"):
            read_xmi(wrap(body))

    def test_missing_end_type_lenient_drops_association(self):
        body = (
            '    <packagedElement xmi:type="uml:Association" xmi:id="id_2">\n'
            '      <ownedEnd xmi:id="id_3" lower="1" upper="1"/>\n'
            '      <ownedEnd xmi:id="id_4" type="id_1" lower="1" upper="1"/>\n'
            "    </packagedElement>"
        )
        result = load_xmi(wrap(body))
        assert [issue.kind for issue in result.issues] == ["missing-end-type"]
        assert result.model.associations == []

    def test_association_with_one_end_reported(self):
        body = (
            '    <packagedElement xmi:type="uml:Association" xmi:id="id_2">\n'
            '      <ownedEnd xmi:id="id_3" type="id_1" lower="1" upper="1"/>\n'
            "    </packagedElement>"
        )
        result = load_xmi(wrap(body))
        assert [issue.kind for issue in result.issues] == ["bad-association"]

    def test_missing_dependency_refs_strict(self):
        body = '    <packagedElement xmi:type="uml:Dependency" xmi:id="id_2"/>'
        with pytest.raises(XmiError, match="client and supplier reference"):
            read_xmi(wrap(body))

    def test_missing_dependency_refs_lenient_removes_dependency(self):
        body = '    <packagedElement xmi:type="uml:Dependency" xmi:id="id_2" client="id_1"/>'
        result = load_xmi(wrap(body))
        assert [issue.kind for issue in result.issues] == ["missing-dependency-ref"]
        assert result.model.dependencies == []

    def test_duplicate_enum_literal_id_caught(self):
        body = (
            '    <packagedElement xmi:type="uml:Enumeration" xmi:id="id_2" name="Codes">\n'
            '      <ownedLiteral xmi:id="id_3" name="AD"/>\n'
            '      <ownedLiteral xmi:id="id_3" name="AT"/>\n'
            "    </packagedElement>"
        )
        with pytest.raises(XmiError, match="duplicate xmi:id 'id_3'"):
            read_xmi(wrap(body))
        result = load_xmi(wrap(body))
        assert [issue.kind for issue in result.issues] == ["duplicate-id"]
        assert result.model.find_classifier_anywhere("Codes").literal_names() == ["AD", "AT"]

    def test_duplicate_enum_literal_name_lenient(self):
        body = (
            '    <packagedElement xmi:type="uml:Enumeration" xmi:id="id_2" name="Codes">\n'
            '      <ownedLiteral xmi:id="id_3" name="AD"/>\n'
            '      <ownedLiteral xmi:id="id_4" name="AD"/>\n'
            "    </packagedElement>"
        )
        result = load_xmi(wrap(body))
        assert [issue.kind for issue in result.issues] == ["bad-literal"]
        assert result.model.find_classifier_anywhere("Codes").literal_names() == ["AD"]

    def test_missing_id_gets_synthetic_id(self):
        body = '    <packagedElement xmi:type="uml:Class" name="NoId"/>'
        result = load_xmi(wrap(body))
        assert [issue.kind for issue in result.issues] == ["missing-id"]
        no_id = result.model.find_classifier_anywhere("NoId")
        assert no_id.xmi_id.startswith("__synthetic_")

    def test_bad_aggregation_downgraded_to_none(self):
        body = (
            '    <packagedElement xmi:type="uml:Class" xmi:id="id_2" name="A"/>\n'
            '    <packagedElement xmi:type="uml:Association" xmi:id="id_3">\n'
            '      <ownedEnd xmi:id="id_4" type="id_2" aggregation="fuzzy" lower="1" upper="1"/>\n'
            '      <ownedEnd xmi:id="id_5" type="id_2" lower="1" upper="1"/>\n'
            "    </packagedElement>"
        )
        result = load_xmi(wrap(body))
        assert [issue.kind for issue in result.issues] == ["bad-aggregation"]
        assert len(result.model.associations) == 1


class TestResourceLimits:
    def test_max_elements_lenient_is_fatal(self):
        body = "\n".join(
            f'    <packagedElement xmi:type="uml:Class" xmi:id="id_{n}" name="C{n}"/>'
            for n in range(2, 12)
        )
        result = load_xmi(wrap(body), max_elements=5)
        assert result.model is None
        assert result.issues[-1].kind == "resource-limit"
        assert "max_elements=5" in result.issues[-1].message

    def test_max_elements_strict_raises(self):
        body = "\n".join(
            f'    <packagedElement xmi:type="uml:Class" xmi:id="id_{n}" name="C{n}"/>'
            for n in range(2, 12)
        )
        with pytest.raises(XmiError, match="max_elements=5"):
            read_xmi(wrap(body), max_elements=5)

    def test_max_depth_guards_nested_packages(self):
        body = ""
        for level in range(6):
            body += (
                "  " * level
                + f'    <packagedElement xmi:type="uml:Package" xmi:id="id_{level + 2}" name="P{level}">\n'
            )
        for level in reversed(range(6)):
            body += "  " * level + "    </packagedElement>\n"
        with pytest.raises(XmiError, match="max_depth=3"):
            read_xmi(wrap(body.rstrip("\n")), max_depth=3)
        result = load_xmi(wrap(body.rstrip("\n")), max_depth=3)
        assert result.model is None
        assert result.issues[-1].kind == "resource-limit"

    def test_default_limits_accept_real_models(self):
        assert DEFAULT_MAX_ELEMENTS >= 100_000
        assert DEFAULT_MAX_DEPTH >= 50
        result = load_xmi(CORPUS / "dangling_refs.xmi")
        assert result.model is not None


class TestLoadIssueMetrics:
    def test_lenient_issues_land_on_labeled_counter(self):
        import repro.obs as obs

        obs.configure(trace=False, reset_metrics=True)
        load_xmi(CORPUS / "duplicate_ids.xmi")
        snapshot = obs.get_metrics().render_json()
        assert "xmi.load_issues" in snapshot
        assert "duplicate-id" in snapshot

    def test_strict_mode_does_not_count_issues(self):
        import repro.obs as obs

        obs.configure(trace=False, reset_metrics=True)
        with pytest.raises(XmiError):
            read_xmi(CORPUS / "duplicate_ids.xmi")
        assert "load_issues" not in obs.get_metrics().render_json()
