"""Unit tests for the profile machinery."""

import pytest

from repro.errors import ProfileError
from repro.uml.classifier import Class
from repro.uml.package import Package
from repro.uml.property import Property
from repro.uml.stereotype import Profile, StereotypeDef, TagDef


def _profile():
    profile = Profile("Test")
    profile.add("Common", StereotypeDef(
        "ACC", ("Class",),
        (TagDef("definition", required=True, default=""), TagDef("version")),
    ))
    profile.add("Common", StereotypeDef("CC", ("Class", "Property"), abstract=True))
    profile.add("Management", StereotypeDef(
        "CCLibrary", ("Package",), (TagDef("baseURN", required=True),),
    ))
    return profile


class TestProfileRegistry:
    def test_find_and_get(self):
        profile = _profile()
        assert profile.find("ACC") is not None
        assert profile.find("missing") is None
        with pytest.raises(ProfileError):
            profile.get("missing")

    def test_duplicate_definition_rejected(self):
        profile = _profile()
        with pytest.raises(ProfileError):
            profile.add("Common", StereotypeDef("ACC", ("Class",)))

    def test_stereotype_names_by_package(self):
        profile = _profile()
        assert profile.stereotype_names("Common") == ["ACC", "CC"]
        assert set(profile.stereotype_names()) == {"ACC", "CC", "CCLibrary"}


class TestApplicationChecks:
    def test_valid_application(self):
        profile = _profile()
        cls = Class("X")
        cls.apply_stereotype("ACC", definition="doc")
        assert profile.check_element(cls) == []

    def test_unknown_stereotype(self):
        profile = _profile()
        cls = Class("X")
        cls.apply_stereotype("WAT")
        problems = profile.check_element(cls)
        assert any("unknown stereotype" in p for p in problems)

    def test_wrong_metaclass(self):
        profile = _profile()
        prop = Property("p")
        prop.apply_stereotype("ACC")
        problems = profile.check_element(prop)
        assert any("extends Class" in p for p in problems)

    def test_abstract_cannot_be_applied(self):
        profile = _profile()
        cls = Class("X")
        cls.apply_stereotype("CC")
        problems = profile.check_element(cls)
        assert any("abstract" in p for p in problems)

    def test_undefined_tag_reported(self):
        profile = _profile()
        cls = Class("X")
        cls.apply_stereotype("ACC", bogus="1")
        problems = profile.check_element(cls)
        assert any("no tagged value 'bogus'" in p for p in problems)

    def test_required_tag_without_default_reported(self):
        profile = _profile()
        package = Package("lib")
        package.apply_stereotype("CCLibrary")
        problems = profile.check_element(package)
        assert any("requires tagged value 'baseURN'" in p for p in problems)

    def test_required_tag_with_default_tolerated(self):
        profile = _profile()
        cls = Class("X")
        cls.apply_stereotype("ACC")  # definition required but defaulted
        assert profile.check_element(cls) == []

    def test_metaclass_match_via_mro(self):
        # PrimitiveType is a DataType; a stereotype extending DataType matches.
        profile = Profile("P")
        profile.add("D", StereotypeDef("PRIM", ("DataType",)))
        from repro.uml.classifier import PrimitiveType

        prim = PrimitiveType("String")
        prim.apply_stereotype("PRIM")
        assert profile.check_element(prim) == []
