"""Unit tests for the derivation-by-restriction engine."""

import pytest

from repro.ccts.derivation import (
    check_abie_restriction,
    check_qdt_restriction,
    derive_abie,
    derive_qdt,
    qdt_widened_supplementaries,
)
from repro.ccts.model import CctsModel
from repro.errors import DerivationError
from repro.uml.association import AggregationKind


@pytest.fixture
def world():
    model = CctsModel("D")
    business = model.add_business_library("B", "urn:d")
    prims = business.add_prim_library("Prims")
    string = prims.add_primitive("String")
    enums = business.add_enum_library("Enums")
    country_enum = enums.add_enumeration("Country_Code", {"US": "United States"})
    cdts = business.add_cdt_library("Cdts")
    code = cdts.add_cdt("Code")
    code.set_content(string.element)
    code.add_supplementary("ListName", string.element, "0..1")
    code.add_supplementary("ListAgency", string.element, "0..1")
    text = cdts.add_cdt("Text")
    text.set_content(string.element)
    ccs = business.add_cc_library("Ccs")
    address = ccs.add_acc("Address")
    address.add_bcc("Street", text, "0..1")
    address.add_bcc("Country", code, "0..1")
    person = ccs.add_acc("Person")
    person.add_bcc("Name", text, "1")
    person.add_ascc("Home", address, "0..1", AggregationKind.COMPOSITE)
    qdts = business.add_qdt_library("Qdts")
    bies = business.add_bie_library("Bies")
    return model, business, code, text, country_enum, qdts, bies, address, person


class TestDeriveQdt:
    def test_keeps_selected_sups_and_enum(self, world):
        model, _, code, _, enum, qdts, *_ = world
        qdt = derive_qdt(qdts, code, "CountryType", ["ListName"], content_enum=enum)
        assert qdt.based_on.element is code.element
        assert [s.name for s in qdt.supplementary_components] == ["ListName"]
        assert qdt.content_enum.element is enum.element
        assert check_qdt_restriction(qdt) == []

    def test_without_enum_keeps_cdt_content_type(self, world):
        model, _, code, _, _, qdts, *_ = world
        qdt = derive_qdt(qdts, code, "PlainCode")
        assert qdt.content_enum is None
        assert qdt.content_component.element.type is code.content_component.element.type

    def test_unknown_sup_rejected(self, world):
        model, _, code, _, _, qdts, *_ = world
        with pytest.raises(DerivationError):
            derive_qdt(qdts, code, "Bad", ["NotASup"])

    def test_base_without_content_rejected(self, world):
        model, business, *_ = world
        broken_lib = business.add_cdt_library("Broken")
        broken = broken_lib.add_cdt("Empty")
        qdts = business.add_qdt_library("Qdts2")
        with pytest.raises(DerivationError):
            derive_qdt(qdts, broken, "FromEmpty")

    def test_tightened_multiplicity(self, world):
        model, _, code, _, _, qdts, *_ = world
        qdt = derive_qdt(qdts, code, "Tight", {"ListName": "1"})
        assert str(qdt.supplementary("ListName").multiplicity) == "1"
        assert qdt_widened_supplementaries(qdt) == []

    def test_widening_reported_not_rejected(self, world):
        model, business, code, *_ = world
        # Re-declare a CDT whose SUP is required, then widen it in the QDT.
        cdts2 = business.add_cdt_library("Cdts2")
        strict = cdts2.add_cdt("Strict")
        strict.set_content(code.content_component.element.type)
        strict.add_supplementary("Must", code.content_component.element.type, "1")
        qdts2 = business.add_qdt_library("Qdts3")
        widened = derive_qdt(qdts2, strict, "Loose", {"Must": "0..1"})
        findings = qdt_widened_supplementaries(widened)
        assert len(findings) == 1 and "widens" in findings[0]


class TestDeriveAbie:
    def test_include_and_qualifier(self, world):
        *_, bies, address, person = world
        derivation = derive_abie(bies, person, qualifier="US")
        assert derivation.abie.name == "US_Person"
        bbie = derivation.include("Name")
        assert bbie.element.type is person.bcc("Name").element.type
        assert derivation.abie.based_on.element is person.element

    def test_explicit_name_wins(self, world):
        *_, bies, address, person = world
        derivation = derive_abie(bies, person, name="Traveller")
        assert derivation.abie.name == "Traveller"

    def test_unknown_bcc_rejected(self, world):
        *_, bies, address, person = world
        derivation = derive_abie(bies, person)
        with pytest.raises(Exception):
            derivation.include("NotThere")

    def test_multiplicity_widening_rejected(self, world):
        *_, bies, address, person = world
        derivation = derive_abie(bies, person, qualifier="X")
        with pytest.raises(DerivationError):
            derivation.include("Name", "0..*")

    def test_retyping_to_unrelated_qdt_rejected(self, world):
        model, _, code, text, enum, qdts, bies, address, person = world
        code_qdt = derive_qdt(qdts, code, "CodeQdt")
        derivation = derive_abie(bies, person, qualifier="Y")
        # Name is typed Text; CodeQdt is based on Code -> must be rejected.
        with pytest.raises(DerivationError):
            derivation.include("Name", data_type=code_qdt)

    def test_retyping_to_matching_qdt_allowed(self, world):
        model, _, code, text, enum, qdts, bies, address, person = world
        country_qdt = derive_qdt(qdts, code, "CountryQdt", content_enum=enum)
        addr = derive_abie(bies, address, qualifier="US")
        bbie = addr.include("Country", data_type=country_qdt)
        assert bbie.element.type is country_qdt.element

    def test_include_all(self, world):
        *_, bies, address, person = world
        derivation = derive_abie(bies, address, qualifier="Z")
        bbies = derivation.include_all()
        assert [b.name for b in bbies] == ["Street", "Country"]

    def test_connect_with_based_on(self, world):
        *_, bies, address, person = world
        us_address = derive_abie(bies, address, qualifier="US")
        us_person = derive_abie(bies, person, qualifier="US")
        asbie = us_person.connect("Home", us_address.abie, based_on="Home")
        assert asbie.based_on.element is person.ascc("Home").element
        assert asbie.aggregation is AggregationKind.COMPOSITE

    def test_connect_multiplicity_widening_rejected(self, world):
        *_, bies, address, person = world
        us_address = derive_abie(bies, address, qualifier="A")
        us_person = derive_abie(bies, person, qualifier="A")
        with pytest.raises(DerivationError):
            us_person.connect("Home", us_address.abie, "0..*", based_on="Home")

    def test_connect_wrong_target_base_rejected(self, world):
        *_, bies, address, person = world
        other_person = derive_abie(bies, person, qualifier="B")
        me = derive_abie(bies, person, qualifier="C")
        with pytest.raises(DerivationError):
            me.connect("Home", other_person.abie, based_on="Home")

    def test_connect_without_based_on_is_free(self, world):
        *_, bies, address, person = world
        a = derive_abie(bies, address, qualifier="F1")
        b = derive_abie(bies, person, qualifier="F2")
        asbie = b.connect("Anything", a.abie, "0..*")
        assert asbie.based_on is None


class TestRestrictionChecks:
    def test_clean_derivation_checks_clean(self, world):
        *_, bies, address, person = world
        us_address = derive_abie(bies, address, qualifier="US")
        us_address.include("Street")
        assert check_abie_restriction(us_address.abie) == []

    def test_missing_based_on_reported(self, world):
        *_, bies, address, person = world
        abie = bies.add_abie("Orphan")
        problems = check_abie_restriction(abie)
        assert problems and "basedOn" in problems[0]

    def test_added_bbie_reported(self, world):
        model, _, code, text, *_ , bies, address, person = world
        abie = derive_abie(bies, address, qualifier="Q").abie
        abie.element.add_attribute("Invented", text.element, "1", stereotype="BBIE")
        problems = check_abie_restriction(abie)
        assert any("no corresponding BCC" in p for p in problems)

    def test_widened_multiplicity_reported(self, world):
        model, _, code, text, *_, bies, address, person = world
        abie = derive_abie(bies, address, qualifier="W").abie
        abie.element.add_attribute("Street", text.element, "1..*", stereotype="BBIE")
        problems = check_abie_restriction(abie)
        assert any("multiplicity" in p for p in problems)

    def test_qdt_missing_based_on_reported(self, world):
        model, business, *_ = world
        qdts = business.add_qdt_library("Qdts9")
        loner = qdts.add_qdt("Loner")
        problems = check_qdt_restriction(loner)
        assert problems and "basedOn" in problems[0]
