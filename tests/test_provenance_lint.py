"""Tier-1 wiring for tools/check_provenance_recording.py.

The lint guarantees the provenance layer stays complete: library builders
may only add top-level schema components through ``SchemaBuilder.emit``,
which records a :class:`~repro.xsdgen.provenance.ProvenanceRecord` for
each one.  A direct ``.items.append`` would emit an unexplainable
construct, so the tree must stay clean.
"""

from __future__ import annotations

import sys
import textwrap
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
XSDGEN = ROOT / "src" / "repro" / "xsdgen"


def _checker():
    sys.path.insert(0, str(ROOT / "tools"))
    try:
        import check_provenance_recording
    finally:
        sys.path.pop(0)
    return check_provenance_recording


def test_builder_modules_are_clean():
    checker = _checker()
    assert checker.find_violations(XSDGEN) == []


def test_direct_append_is_flagged(tmp_path):
    checker = _checker()
    (tmp_path / "doc_library.py").write_text(
        textwrap.dedent(
            """
            def build(builder, element):
                builder.schema.items.append(element)
            """
        ),
        encoding="utf-8",
    )
    violations = checker.find_violations(tmp_path)
    assert len(violations) == 1
    assert violations[0].startswith("doc_library.py:3")
    assert "SchemaBuilder.emit" in violations[0]


def test_extend_and_augmented_assign_are_flagged(tmp_path):
    checker = _checker()
    (tmp_path / "qdt_library.py").write_text(
        textwrap.dedent(
            """
            def build(builder, types):
                builder.schema.items.extend(types)
                builder.schema.items += types
            """
        ),
        encoding="utf-8",
    )
    violations = checker.find_violations(tmp_path)
    assert len(violations) == 2
    assert "items.extend" in violations[0]
    assert "augmented assignment" in violations[1]


def test_non_builder_modules_are_exempt(tmp_path):
    checker = _checker()
    (tmp_path / "generator.py").write_text(
        "def emit(self, item):\n    self.schema.items.append(item)\n",
        encoding="utf-8",
    )
    assert checker.find_violations(tmp_path) == []


def test_main_exit_codes(tmp_path, capsys):
    checker = _checker()
    assert checker.main([str(XSDGEN)]) == 0
    assert "OK" in capsys.readouterr().out

    (tmp_path / "enum_library.py").write_text(
        "def build(builder, st):\n    builder.schema.items.append(st)\n",
        encoding="utf-8",
    )
    assert checker.main([str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert "unrecorded schema emission" in out
    assert "enum_library.py:2" in out
