"""Unit tests for the management console (the paper's future-work amenities)."""

import pytest

from repro.console import (
    bump_version,
    find_unused,
    impact_of,
    move_classifier,
    rename_classifier,
    set_global_schema_location,
    update_base_urns,
)
from repro.errors import CctsError
from repro.xsdgen import SchemaGenerator


class TestUpdateBaseUrns:
    def test_all_libraries_retagged(self, easybiz):
        changed = update_base_urns(easybiz.model, "urn:au:gov:vic:easybiz", "urn:au:gov:nsw:easybiz")
        assert len(changed) == 9  # 8 libraries + the business library
        result = SchemaGenerator(easybiz.model).generate(easybiz.doc_library, root="HoardingPermit")
        assert result.root.schema.target_namespace.startswith("urn:au:gov:nsw:easybiz")
        for import_decl in result.root.schema.imports:
            assert import_decl.namespace.startswith("urn:au:gov:nsw:easybiz")

    def test_non_matching_untouched(self, easybiz):
        assert update_base_urns(easybiz.model, "urn:something:else", "urn:new") == []


class TestVersionAndRename:
    def test_bump_version_changes_urn_file(self, easybiz):
        previous = bump_version(easybiz.doc_library, "0.5")
        assert previous == "0.4"
        result = SchemaGenerator(easybiz.model).generate(easybiz.doc_library, root="HoardingPermit")
        assert result.root.namespace.file_name.endswith("_0.5.xsd")

    def test_rename_keeps_references_intact(self, easybiz):
        attachment = easybiz.model.abie("Attachment")
        rename_classifier(easybiz.model, attachment, "Enclosure")
        result = SchemaGenerator(easybiz.model).generate(easybiz.doc_library, root="HoardingPermit")
        particles = result.root.schema.complex_type("HoardingPermitType").particle.particles
        names = [p.name for p in particles]
        # The ASBIE compound name follows the rename automatically.
        assert "IncludedEnclosure" in names and "IncludedAttachment" not in names

    def test_rename_collision_rejected(self, easybiz):
        attachment = easybiz.model.abie("Attachment")
        with pytest.raises(CctsError, match="taken"):
            rename_classifier(easybiz.model, attachment, "Signature")

    def test_rename_invalid_name_rejected(self, easybiz):
        attachment = easybiz.model.abie("Attachment")
        with pytest.raises(CctsError):
            rename_classifier(easybiz.model, attachment, "!!!")


class TestMove:
    def test_move_abie_between_bie_libraries(self, easybiz):
        attachment = easybiz.model.abie("Attachment")
        move_classifier(easybiz.model, attachment, easybiz.local_law_aggregates)
        assert easybiz.common_aggregates.package.find_classifier("Attachment") is None
        assert easybiz.local_law_aggregates.package.find_classifier("Attachment") is not None
        # Generation follows the move: IncludedAttachment now types into bie2.
        result = SchemaGenerator(easybiz.model).generate(easybiz.doc_library, root="HoardingPermit")
        particle = next(
            p for p in result.root.schema.complex_type("HoardingPermitType").particle.particles
            if p.name == "IncludedAttachment"
        )
        assert particle.type.namespace.endswith("LocalLawAggregates")

    def test_move_into_wrong_kind_rejected(self, easybiz):
        attachment = easybiz.model.abie("Attachment")
        with pytest.raises(CctsError, match="cannot move"):
            move_classifier(easybiz.model, attachment, easybiz.cdt_library)

    def test_move_name_collision_rejected(self, easybiz):
        registration = easybiz.local_law_aggregates.abie("Registration")
        move_classifier(easybiz.model, registration, easybiz.common_aggregates)
        with pytest.raises(CctsError):
            move_classifier(easybiz.model, easybiz.common_aggregates.abie("Registration"),
                            easybiz.common_aggregates)


class TestFindUnused:
    def test_easybiz_unused_report(self, easybiz):
        unused = find_unused(easybiz.model)
        # Name CDT exists in the paper catalog but nothing types with it.
        assert any(name.endswith(".Name") for name in unused["CDT"])
        # CouncilType QDT is defined (Figure 4) but never used by a BBIE.
        assert any(name.endswith(".CouncilType") for name in unused["QDT"])
        # Every ACC is used (all ABIEs derive from one).
        assert unused["ACC"] == []

    def test_used_elements_not_reported(self, easybiz):
        unused = find_unused(easybiz.model)
        assert not any(name.endswith(".Code") for name in unused["CDT"])
        assert not any(name.endswith(".CountryType") for name in unused["QDT"])


class TestImpact:
    def test_cdt_change_touches_everything_typed_by_it(self, easybiz):
        code = easybiz.cdt_library.cdt("Code")
        affected = impact_of(easybiz.model, code)
        assert set(affected) >= {
            "coredatatypes", "CommonDataTypes", "CandidateCoreComponents",
            "CommonAggregates", "LocalLawAggregates", "EB005-HoardingPermit",
        }

    def test_leaf_abie_impact_is_local_plus_users(self, easybiz):
        registration = easybiz.local_law_aggregates.abie("Registration")
        affected = impact_of(easybiz.model, registration)
        assert "LocalLawAggregates" in affected
        assert "EB005-HoardingPermit" in affected
        assert "CommonAggregates" not in affected


class TestGlobalSchemaLocation:
    def test_rewrite_to_absolute_base(self, easybiz):
        result = SchemaGenerator(easybiz.model).generate(easybiz.doc_library, root="HoardingPermit")
        rewritten = set_global_schema_location(result, "https://schemas.example.org/easybiz/")
        assert rewritten > 0
        for generated in result.schemas.values():
            for import_decl in generated.schema.imports:
                assert import_decl.schema_location.startswith("https://schemas.example.org/easybiz/")
                assert import_decl.schema_location.endswith(".xsd")

    def test_rewritten_schemas_still_render(self, easybiz):
        result = SchemaGenerator(easybiz.model).generate(easybiz.doc_library, root="HoardingPermit")
        set_global_schema_location(result, "https://x.test/s")
        text = result.root.to_string()
        assert 'schemaLocation="https://x.test/s/types_draft_coredatatypes_1.0.xsd"' in text
