"""Unit tests for the spreadsheet baseline and model diffing."""

import csv
import io

import pytest

from repro.interchange import diff_models, export_csv, import_csv
from repro.interchange.spreadsheet import COLUMNS


class TestExport:
    def test_header_and_shape(self, figure1):
        text = export_csv(figure1.model)
        rows = list(csv.DictReader(io.StringIO(text)))
        assert list(rows[0].keys()) == list(COLUMNS)
        kinds = {row["kind"] for row in rows}
        assert {"ACC", "BCC", "ASCC", "ABIE", "BBIE", "ASBIE", "CDT", "CON", "PRIM"} <= kinds

    def test_based_on_recorded(self, figure1):
        text = export_csv(figure1.model)
        rows = list(csv.DictReader(io.StringIO(text)))
        us_person = next(r for r in rows if r["kind"] == "ABIE" and r["name"] == "US_Person")
        assert us_person["based_on"] == "Person"

    def test_literals_exported(self, easybiz):
        text = export_csv(easybiz.model)
        rows = list(csv.DictReader(io.StringIO(text)))
        literals = [r for r in rows if r["kind"] == "LITERAL" and r["owner"] == "CountryType_Code"]
        assert {r["name"] for r in literals} == {"USA", "AUT", "AUS"}

    def test_write_to_file(self, figure1, tmp_path):
        path = tmp_path / "f.csv"
        text = export_csv(figure1.model, path)
        assert path.read_text(encoding="utf-8") == text


class TestImport:
    def test_reimport_reconstructs_structure(self, figure1):
        imported = import_csv(export_csv(figure1.model))
        person = imported.acc("Person")
        assert [bcc.name for bcc in person.bccs] == ["DateofBirth", "FirstName"]
        assert {ascc.role for ascc in person.asccs} == {"Private", "Work"}
        us_person = imported.abie("US_Person")
        assert us_person.based_on.element is imported.acc("Person").element

    def test_reimport_keeps_multiplicities(self, easybiz):
        imported = import_csv(export_csv(easybiz.model))
        permit = imported.abie("HoardingPermit")
        included = next(a for a in permit.asbies if a.target.name == "Attachment")
        assert str(included.multiplicity) == "0..*"

    def test_reimport_keeps_aggregation_kind(self, easybiz):
        from repro.uml.association import AggregationKind

        imported = import_csv(export_csv(easybiz.model))
        person_identification = imported.abie("Person_Identification")
        assigned = person_identification.asbie("Assigned")
        assert assigned.aggregation is AggregationKind.SHARED


class TestFidelityGap:
    def test_xmi_round_trip_is_lossless(self, easybiz):
        from repro.ccts.model import CctsModel
        from repro.xmi import read_xmi, write_xmi

        reloaded = CctsModel(model=read_xmi(write_xmi(easybiz.model.model)))
        assert diff_models(easybiz.model, reloaded) == []

    def test_csv_round_trip_loses_information(self, easybiz):
        imported = import_csv(export_csv(easybiz.model))
        differences = diff_models(easybiz.model, imported)
        assert differences, "the spreadsheet baseline should be lossy"
        assert any("tagged values differ" in d for d in differences)

    def test_diff_reports_missing_library(self, figure1, easybiz):
        differences = diff_models(easybiz.model, figure1.model)
        assert any("only in first model" in d for d in differences)

    def test_diff_reports_changed_attribute(self, figure1):
        from repro.catalog import build_figure1_model

        other = build_figure1_model()
        other.person.element.attribute("FirstName").multiplicity = (
            __import__("repro.uml.multiplicity", fromlist=["Multiplicity"]).Multiplicity(0, 1)
        )
        differences = diff_models(figure1.model, other.model)
        assert any("attributes differ" in d for d in differences)

    def test_diff_of_identical_builds_is_empty(self):
        from repro.catalog import build_easybiz_model

        assert diff_models(build_easybiz_model().model, build_easybiz_model().model) == []


class TestCodeLists:
    CSV = "code,name\nUSA,United States of America\nAUT,Austria\nAUS,Australia\n"

    def _library(self):
        from repro.ccts.model import CctsModel

        model = CctsModel("CL")
        business = model.add_business_library("B", "urn:cl")
        return business.add_enum_library("CodeLists")

    def test_import_with_header(self):
        from repro.interchange import import_code_list

        enum = import_code_list(self._library(), "Country_Code", self.CSV)
        assert enum.literal_names == ["USA", "AUT", "AUS"]
        assert enum.literals[0].value == "United States of America"

    def test_import_without_header_and_comments(self):
        from repro.interchange import import_code_list

        text = "# ISO 4217 subset\nEUR,Euro\nUSD,US Dollar\n"
        enum = import_code_list(self._library(), "Currency_Code", text)
        assert enum.literal_names == ["EUR", "USD"]

    def test_import_code_only_rows(self):
        from repro.interchange import import_code_list

        enum = import_code_list(self._library(), "Bare_Code", "A\nB\n")
        assert enum.literals[0].value == "A"

    def test_import_from_file(self, tmp_path):
        from repro.interchange import import_code_list

        path = tmp_path / "codes.csv"
        path.write_text(self.CSV, encoding="utf-8")
        enum = import_code_list(self._library(), "Country_Code", path)
        assert len(enum.literals) == 3

    def test_duplicate_code_rejected(self):
        from repro.errors import InterchangeError
        from repro.interchange import import_code_list

        with pytest.raises(InterchangeError, match="duplicate"):
            import_code_list(self._library(), "Dup_Code", "A,a\nA,b\n")

    def test_empty_list_rejected(self):
        from repro.errors import InterchangeError
        from repro.interchange import import_code_list

        with pytest.raises(InterchangeError, match="empty"):
            import_code_list(self._library(), "Empty_Code", "# nothing\n")

    def test_export_round_trip(self):
        from repro.interchange import export_code_list, import_code_list

        library = self._library()
        enum = import_code_list(library, "Country_Code", self.CSV)
        assert export_code_list(enum) == self.CSV

    def test_imported_list_drives_generation(self):
        from repro.catalog.primitives import add_standard_prim_library
        from repro.ccts.derivation import derive_qdt
        from repro.ccts.model import CctsModel
        from repro.interchange import import_code_list
        from repro.xsdgen import SchemaGenerator

        model = CctsModel("CL")
        business = model.add_business_library("B", "urn:cl")
        prims = add_standard_prim_library(business)
        cdts = business.add_cdt_library("Cdts")
        code = cdts.add_cdt("Code")
        code.set_content(prims.primitive("String").element)
        enums = business.add_enum_library("CodeLists")
        country = import_code_list(enums, "Country_Code", self.CSV)
        qdts = business.add_qdt_library("Qdts")
        derive_qdt(qdts, code, "CountryType", content_enum=country)
        result = SchemaGenerator(model).generate("CodeLists")
        simple = result.root.schema.simple_type("Country_CodeType")
        assert simple.enumeration_values == ["USA", "AUT", "AUS"]
