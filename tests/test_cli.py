"""End-to-end tests for the command-line interface (the Figure-5 dialog)."""

from pathlib import Path

import pytest

from repro.cli import main


@pytest.fixture
def xmi_file(tmp_path):
    path = tmp_path / "easybiz.xmi"
    assert main(["example", "easybiz", "--out", str(path)]) == 0
    return path


class TestExample:
    def test_stdout_when_no_out(self, capsys):
        assert main(["example", "figure1"]) == 0
        out = capsys.readouterr().out
        assert "<xmi:XMI" in out

    @pytest.mark.parametrize("name", ["easybiz", "figure1", "ecommerce"])
    def test_all_catalog_models(self, name, tmp_path):
        path = tmp_path / f"{name}.xmi"
        assert main(["example", name, "--out", str(path)]) == 0
        assert path.exists()


class TestInspect:
    def test_tree_view(self, xmi_file, capsys):
        assert main(["inspect", str(xmi_file)]) == 0
        out = capsys.readouterr().out
        assert "«DOCLibrary» EB005-HoardingPermit" in out
        assert "«ABIE» HoardingPermit" in out


class TestValidate:
    def test_valid_model_exits_zero(self, xmi_file, capsys):
        assert main(["validate", str(xmi_file)]) == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_basic_flag(self, xmi_file, capsys):
        assert main(["validate", str(xmi_file), "--basic"]) == 0

    def test_invalid_model_exits_nonzero(self, tmp_path, capsys):
        from repro.ccts.model import CctsModel
        from repro.xmi import write_xmi

        model = CctsModel("Bad")
        business = model.add_business_library("B", "urn:bad")
        bies = business.add_bie_library("L")
        bies.add_abie("Orphan")
        path = tmp_path / "bad.xmi"
        write_xmi(model.model, path)
        assert main(["validate", str(path)]) == 1
        assert "UPCC-B01" in capsys.readouterr().out


class TestGenerate:
    def test_full_pipeline(self, xmi_file, tmp_path, capsys):
        schemas = tmp_path / "schemas"
        assert main([
            "generate", str(xmi_file),
            "--library", "EB005-HoardingPermit",
            "--root", "HoardingPermit",
            "--out", str(schemas),
        ]) == 0
        assert len(list(schemas.rglob("*.xsd"))) == 6

        instance = tmp_path / "msg.xml"
        assert main(["instance", str(schemas), "--root", "HoardingPermit", "--out", str(instance)]) == 0
        assert main(["check-instance", str(schemas), str(instance)]) == 0
        assert "instance is valid" in capsys.readouterr().out

    def test_generate_to_stdout(self, xmi_file, capsys):
        assert main([
            "generate", str(xmi_file),
            "--library", "CommonAggregates",
        ]) == 0
        out = capsys.readouterr().out
        assert "Person_IdentificationType" in out

    def test_generate_unknown_library_fails(self, xmi_file, capsys):
        assert main(["generate", str(xmi_file), "--library", "Nope"]) == 1
        assert "generation failed" in capsys.readouterr().err

    def test_missing_root_fails_gracefully(self, xmi_file, capsys):
        assert main([
            "generate", str(xmi_file), "--library", "EB005-HoardingPermit",
        ]) == 1
        assert "select a root element" in capsys.readouterr().err

    def test_annotate_flag(self, xmi_file, capsys):
        assert main([
            "generate", str(xmi_file),
            "--library", "EB005-HoardingPermit",
            "--root", "HoardingPermit",
            "--annotate",
        ]) == 0
        out = capsys.readouterr().out
        assert "ccts:AcronymCode" in out

    def test_broken_instance_detected(self, xmi_file, tmp_path, capsys):
        schemas = tmp_path / "schemas"
        main([
            "generate", str(xmi_file),
            "--library", "EB005-HoardingPermit",
            "--root", "HoardingPermit",
            "--out", str(schemas),
        ])
        bad = tmp_path / "bad.xml"
        bad.write_text(
            '<doc:HoardingPermit xmlns:doc="urn:au:gov:vic:easybiz:data:draft:EB005-HoardingPermit"/>',
            encoding="utf-8",
        )
        assert main(["check-instance", str(schemas), str(bad)]) == 1
        assert "problem" in capsys.readouterr().out


class TestAlternativeSyntaxes:
    def test_relaxng_output(self, xmi_file, capsys):
        assert main([
            "generate", str(xmi_file),
            "--library", "EB005-HoardingPermit",
            "--root", "HoardingPermit",
            "--syntax", "rng",
        ]) == 0
        out = capsys.readouterr().out
        assert '<grammar xmlns="http://relaxng.org/ns/structure/1.0"' in out
        assert '<ref name="e.doc.HoardingPermit"/>' in out

    def test_relaxng_requires_root(self, xmi_file, capsys):
        assert main([
            "generate", str(xmi_file),
            "--library", "CommonAggregates",
            "--syntax", "rng",
        ]) == 1
        assert "requires --root" in capsys.readouterr().err

    def test_rdfs_output(self, xmi_file, tmp_path):
        out = tmp_path / "model.rdf"
        assert main([
            "generate", str(xmi_file),
            "--library", "EB005-HoardingPermit",
            "--root", "HoardingPermit",
            "--syntax", "rdfs",
            "--out", str(out),
        ]) == 0
        text = out.read_text(encoding="utf-8")
        assert "<rdf:RDF" in text and "rdfs:subClassOf" in text


class TestRegistryCommands:
    def test_store_search_list(self, xmi_file, tmp_path, capsys):
        registry_dir = str(tmp_path / "registry")
        assert main(["registry", "store", registry_dir, "easybiz", str(xmi_file)]) == 0
        capsys.readouterr()
        assert main(["registry", "search", registry_dir, "Hoarding"]) == 0
        out = capsys.readouterr().out
        assert "[easybiz]" in out and "Hoarding" in out
        assert main(["registry", "list", registry_dir]) == 0
        out = capsys.readouterr().out
        assert "easybiz: 8 libraries" in out
        assert "DOCLibrary EB005-HoardingPermit" in out

    def test_store_twice_needs_overwrite(self, xmi_file, tmp_path, capsys):
        registry_dir = str(tmp_path / "registry")
        assert main(["registry", "store", registry_dir, "m", str(xmi_file)]) == 0
        assert main(["registry", "store", registry_dir, "m", str(xmi_file)]) == 1
        assert main(["registry", "store", registry_dir, "m", str(xmi_file), "--overwrite"]) == 0


class TestDiffCommand:
    def test_identical_models(self, xmi_file, tmp_path, capsys):
        assert main(["diff", str(xmi_file), str(xmi_file)]) == 0
        assert "0 difference(s)" in capsys.readouterr().out

    def test_different_models(self, xmi_file, tmp_path, capsys):
        other = tmp_path / "fig1.xmi"
        main(["example", "figure1", "--out", str(other)])
        capsys.readouterr()
        assert main(["diff", str(xmi_file), str(other)]) == 1
        assert "difference" in capsys.readouterr().out


class TestCompatCommand:
    def test_same_schemas_compatible(self, xmi_file, tmp_path, capsys):
        schemas = tmp_path / "schemas"
        main(["generate", str(xmi_file), "--library", "EB005-HoardingPermit",
              "--root", "HoardingPermit", "--out", str(schemas)])
        capsys.readouterr()
        assert main(["compat", str(schemas), str(schemas)]) == 0
        assert "backward compatible" in capsys.readouterr().out

    def test_breaking_change_detected(self, xmi_file, tmp_path, capsys):
        old = tmp_path / "old"
        main(["generate", str(xmi_file), "--library", "EB005-HoardingPermit",
              "--root", "HoardingPermit", "--out", str(old)])
        new = tmp_path / "new"
        new.mkdir()
        # Drop one schema file entirely: a removed namespace is breaking.
        import shutil
        src = old / "urn_au_gov_vic_easybiz_"
        dst = new / "urn_au_gov_vic_easybiz_"
        dst.mkdir()
        for path in src.iterdir():
            if "LocalLaw" not in path.name:
                shutil.copy(path, dst / path.name)
        capsys.readouterr()
        assert main(["compat", str(old), str(new)]) == 1
        assert "NOT backward compatible" in capsys.readouterr().out


class TestReverseCommand:
    def test_reverse_engineering_pipeline(self, xmi_file, tmp_path, capsys):
        schemas = tmp_path / "schemas"
        main(["generate", str(xmi_file), "--library", "EB005-HoardingPermit",
              "--root", "HoardingPermit", "--out", str(schemas)])
        reconstructed = tmp_path / "reconstructed.xmi"
        capsys.readouterr()
        assert main(["reverse", str(schemas), "--out", str(reconstructed)]) == 0
        out = capsys.readouterr().out
        assert "document libraries: EB005-HoardingPermit" in out
        assert "0 error(s)" in out
        assert reconstructed.exists()
        # The reconstructed model regenerates valid schemas.
        regen = tmp_path / "regen"
        assert main(["generate", str(reconstructed), "--library", "EB005-HoardingPermit",
                     "--root", "HoardingPermit", "--out", str(regen)]) == 0
        assert main(["compat", str(schemas), str(regen)]) == 0


class TestDiagramCommand:
    def test_whole_model_diagram(self, xmi_file, capsys):
        assert main(["diagram", str(xmi_file)]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph")
        assert "subgraph cluster_" in out

    def test_single_library_diagram(self, xmi_file, tmp_path):
        out = tmp_path / "cc.dot"
        assert main(["diagram", str(xmi_file),
                     "--library", "CandidateCoreComponents", "--out", str(out)]) == 0
        text = out.read_text(encoding="utf-8")
        assert "\\<\\<ACC\\>\\> Application" in text
        assert "arrowtail=diamond" in text


class TestDocumentCommand:
    def test_html_documentation(self, xmi_file, tmp_path, capsys):
        out = tmp_path / "doc.html"
        assert main(["document", str(xmi_file),
                     "--library", "EB005-HoardingPermit",
                     "--root", "HoardingPermit",
                     "--out", str(out),
                     "--title", "HoardingPermit exchange"]) == 0
        text = out.read_text(encoding="utf-8")
        assert "<title>HoardingPermit exchange</title>" in text
        assert "HoardingPermitType" in text


class TestValidateXmiCommand:
    CORPUS = Path(__file__).parent / "corpus" / "malformed"

    def test_clean_file_exits_zero(self, xmi_file, capsys):
        assert main(["validate-xmi", str(xmi_file)]) == 0
        assert "ok (model" in capsys.readouterr().out

    def test_corpus_exits_nonzero_with_located_report(self, capsys):
        files = sorted(str(path) for path in self.CORPUS.glob("*.xmi"))
        assert files, "malformed corpus is missing"
        assert main(["validate-xmi", *files]) == 1
        out = capsys.readouterr().out
        assert "[duplicate-id]" in out
        assert "[bad-multiplicity]" in out
        assert "xmi:id=" in out
        assert "defect(s) found" in out

    def test_strict_stops_at_first_defect(self, capsys):
        target = self.CORPUS / "duplicate_ids.xmi"
        assert main(["validate-xmi", "--strict", str(target)]) == 1
        err = capsys.readouterr().err
        assert "duplicate xmi:id" in err
        assert f"{target}:8:" in err

    def test_max_elements_limit(self, xmi_file, capsys):
        assert main(["validate-xmi", "--max-elements", "3", str(xmi_file)]) == 1
        assert "max_elements=3" in capsys.readouterr().out

    def test_missing_file_reported(self, tmp_path, capsys):
        assert main(["validate-xmi", str(tmp_path / "gone.xmi")]) == 1
        assert "error" in capsys.readouterr().err


class TestKeepGoingFlag:
    def test_keep_going_happy_path_matches_default(self, xmi_file, capsys):
        assert main(["generate", str(xmi_file),
                     "--library", "EB005-HoardingPermit",
                     "--root", "HoardingPermit",
                     "--keep-going"]) == 0
        assert "<xsd:schema" in capsys.readouterr().out

    def test_keep_going_reports_failures(self, xmi_file, capsys, monkeypatch):
        import repro.xsdgen.qdt_library
        from repro.errors import GenerationError

        def explode(builder):
            raise GenerationError("sabotaged QDT build")

        monkeypatch.setattr(repro.xsdgen.qdt_library, "build", explode)
        assert main(["generate", str(xmi_file),
                     "--library", "EB005-HoardingPermit",
                     "--root", "HoardingPermit",
                     "--keep-going"]) == 1
        err = capsys.readouterr().err
        assert "sabotaged QDT build" in err
        assert "library build(s) failed" in err
