"""Unit tests for the RELAX NG and RDF Schema extensions."""

import pytest

from repro.rngen import model_to_rdfs, rdfs_to_string, result_to_rng, rng_to_string
from repro.rngen.relaxng import RNG_NS, XSD_DATATYPES
from repro.xmlutil.writer import parse_xml


@pytest.fixture
def grammar(easybiz_result):
    return result_to_rng(easybiz_result, "HoardingPermit")


def _defines(grammar):
    return {node.attributes["name"]: node for node in grammar.find_all("define")}


class TestRelaxNgStructure:
    def test_grammar_root(self, grammar):
        assert grammar.tag == "grammar"
        assert grammar.attributes["xmlns"] == RNG_NS
        assert grammar.attributes["datatypeLibrary"] == XSD_DATATYPES

    def test_start_references_root_element(self, grammar):
        start = grammar.find("start")
        assert start.find("ref").attributes["name"] == "e.doc.HoardingPermit"

    def test_every_complex_type_has_a_define(self, grammar, easybiz_result):
        defines = _defines(grammar)
        for generated in easybiz_result.schemas.values():
            prefix = generated.schema.prefix_for(generated.namespace.urn)
            for complex_type in generated.schema.complex_types:
                assert f"t.{prefix}.{complex_type.name}" in defines

    def test_occurrence_wrappers(self, grammar):
        permit = _defines(grammar)["t.doc.HoardingPermitType"]
        wrappers = [child.tag for child in permit.element_children]
        # 6 optionals (4 BBIEs + CurrentApplication + Billing), one
        # zeroOrMore (IncludedAttachment), one bare element (IncludedRegistration).
        assert wrappers.count("optional") == 6
        assert wrappers.count("zeroOrMore") == 1
        assert wrappers.count("element") == 1

    def test_shared_aggregation_becomes_element_ref(self, grammar):
        person = _defines(grammar)["t.commonAggregates.Person_IdentificationType"]
        refs = [
            child.find("ref") or child
            for child in person.element_children
        ]
        names = [node.attributes.get("name") for node in refs if node.tag == "ref" or node.find("ref")]
        flat = rng_to_string(grammar)
        assert '<ref name="e.commonAggregates.AssignedAddress"/>' in flat

    def test_simple_content_flattens_to_data_and_attributes(self, grammar):
        code = _defines(grammar)["t.cdt.CodeType"]
        text = rng_to_string(grammar)
        assert code.find("data").attributes["type"] == "string"
        attribute_names = {
            node.attributes["name"]
            for node in code.find_all("attribute")
        }
        assert {"CodeListAgName", "CodeListName", "CodeListSchemeURI"} <= attribute_names
        assert '<attribute name="LanguageIdentifier">' in text

    def test_enumeration_becomes_value_choice(self, grammar):
        country = _defines(grammar)["t.enum.CountryType_CodeType"]
        choice = country.find("choice")
        values = [child.text_content for child in choice.find_all("value")]
        assert values == ["USA", "AUT", "AUS"]

    def test_qdt_with_enum_content(self, grammar):
        country_type = _defines(grammar)["t.qdt.CountryTypeType"]
        choice = country_type.find("choice")
        assert [c.text_content for c in choice.find_all("value")] == ["USA", "AUT", "AUS"]

    def test_prohibited_attribute_omitted(self, grammar):
        indicator = _defines(grammar)["t.qdt.Indicator_CodeType"]
        attribute_names = {node.attributes["name"] for node in indicator.find_all("attribute")}
        # LanguageIdentifier was prohibited in the XSD restriction -> absent.
        assert "LanguageIdentifier" not in attribute_names

    def test_rendered_grammar_is_well_formed(self, grammar):
        text = rng_to_string(grammar)
        reparsed = parse_xml(text)
        assert reparsed.tag == "grammar"
        assert len(reparsed.find_all("define")) == len(grammar.find_all("define"))

    def test_unknown_root_rejected(self, easybiz_result):
        from repro.errors import SchemaError

        with pytest.raises(SchemaError):
            result_to_rng(easybiz_result, "NotAnElement")


class TestRdfs:
    def test_classes_for_aggregates(self, easybiz):
        rdf = model_to_rdfs(easybiz.model)
        abouts = {node.attributes.get("rdf:about") for node in rdf.find_all("rdfs:Class")}
        assert any(about.endswith("#HoardingPermit") for about in abouts)
        assert any(about.endswith("#Person_Identification") for about in abouts)

    def test_based_on_becomes_subclass(self, easybiz):
        rdf = model_to_rdfs(easybiz.model)
        application_abies = [
            node for node in rdf.find_all("rdfs:Class")
            if node.attributes.get("rdf:about", "").endswith("CommonAggregates#Application")
        ]
        assert application_abies
        subclass = application_abies[0].find("rdfs:subClassOf")
        assert subclass.attributes["rdf:resource"].endswith("CandidateCoreComponents#Application")

    def test_properties_carry_domain_and_range(self, easybiz):
        rdf = model_to_rdfs(easybiz.model)
        properties = {
            node.attributes["rdf:about"]: node for node in rdf.find_all("rdf:Property")
        }
        bbie = next(uri for uri in properties if uri.endswith("#HoardingPermit.ClosureReason"))
        node = properties[bbie]
        assert node.find("rdfs:domain").attributes["rdf:resource"].endswith("#HoardingPermit")
        assert node.find("rdfs:range").attributes["rdf:resource"].endswith("#Text")

    def test_asbie_subproperty_of_ascc(self, easybiz):
        rdf = model_to_rdfs(easybiz.model)
        properties = [
            node for node in rdf.find_all("rdf:Property")
            if node.attributes["rdf:about"].endswith("EB005-HoardingPermit#HoardingPermit.Billing")
        ]
        assert properties
        parent = properties[0].find("rdfs:subPropertyOf")
        assert parent.attributes["rdf:resource"].endswith("CandidateCoreComponents#HoardingPermit.Billing")

    def test_definitions_become_comments(self, figure1):
        figure1.person.definition = "A natural person."
        text = rdfs_to_string(figure1.model)
        assert "<rdfs:comment>A natural person.</rdfs:comment>" in text

    def test_rendered_document_is_well_formed(self, easybiz):
        text = rdfs_to_string(easybiz.model)
        reparsed = parse_xml(text)
        assert reparsed.tag == "rdf:RDF"
