"""Unit tests for the XSD component model."""

import pytest

from repro.errors import SchemaError
from repro.xmlutil.qname import QName
from repro.xsd.components import (
    XSD_NS,
    AttributeDecl,
    ChoiceGroup,
    ComplexType,
    ElementDecl,
    Facet,
    Schema,
    SequenceGroup,
    SimpleContent,
    SimpleType,
)
from repro.xsd.components import xsd


class TestElementDecl:
    def test_requires_name_or_ref(self):
        with pytest.raises(SchemaError):
            ElementDecl()
        with pytest.raises(SchemaError):
            ElementDecl(name="a", ref=QName("", "b"))

    def test_occurrence_sanity(self):
        with pytest.raises(SchemaError):
            ElementDecl(name="a", min_occurs=-1)
        with pytest.raises(SchemaError):
            ElementDecl(name="a", min_occurs=2, max_occurs=1)

    def test_is_ref(self):
        assert ElementDecl(ref=QName("urn:x", "Y")).is_ref
        assert not ElementDecl(name="a").is_ref


class TestSimpleContentAndFacets:
    def test_bad_derivation_rejected(self):
        with pytest.raises(SchemaError):
            SimpleContent(xsd("string"), derivation="union")

    def test_unknown_facet_rejected(self):
        with pytest.raises(SchemaError):
            Facet("sparkle", "much")

    def test_complex_type_cannot_mix_content(self):
        with pytest.raises(SchemaError):
            ComplexType("X", particle=SequenceGroup(), simple_content=SimpleContent(xsd("string")))

    def test_enumeration_values(self):
        simple = SimpleType("S", facets=[Facet("enumeration", "A"), Facet("enumeration", "B"), Facet("pattern", ".")])
        assert simple.enumeration_values == ["A", "B"]


class TestSchemaAccessors:
    def _schema(self):
        schema = Schema("urn:t")
        schema.items.append(ComplexType("CT", particle=SequenceGroup()))
        schema.items.append(SimpleType("ST"))
        schema.items.append(ElementDecl(name="Root", type=QName("urn:t", "CT")))
        return schema

    def test_partitioned_views(self):
        schema = self._schema()
        assert [c.name for c in schema.complex_types] == ["CT"]
        assert [s.name for s in schema.simple_types] == ["ST"]
        assert [e.name for e in schema.global_elements] == ["Root"]

    def test_named_lookups(self):
        schema = self._schema()
        assert schema.complex_type("CT").name == "CT"
        assert schema.simple_type("ST").name == "ST"
        assert schema.global_element("Root").name == "Root"
        with pytest.raises(SchemaError):
            schema.complex_type("missing")
        with pytest.raises(SchemaError):
            schema.simple_type("missing")
        with pytest.raises(SchemaError):
            schema.global_element("missing")

    def test_prefix_for(self):
        schema = Schema("urn:t", prefixes={"t": "urn:t", "x": "urn:x"})
        assert schema.prefix_for("urn:x") == "x"
        assert schema.prefix_for("urn:none") is None

    def test_xsd_helper(self):
        assert xsd("string") == QName(XSD_NS, "string")

    def test_groups_hold_nested_particles(self):
        group = SequenceGroup([ElementDecl(name="a"), ChoiceGroup([ElementDecl(name="b")])])
        assert len(group.particles) == 2

    def test_attribute_default_use(self):
        attr = AttributeDecl("a", xsd("string"))
        assert attr.use.value == "optional"
