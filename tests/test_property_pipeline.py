"""Property-based tests over randomly generated core-component models.

A hypothesis strategy builds arbitrary (but CCTS-valid) models: random CDT
shapes, random ACC graphs, random restrictions into ABIEs, random document
assembly.  For every generated model the whole pipeline must hold:

* the validation engine reports no errors,
* schema generation succeeds and is deterministic,
* generated schemas round-trip through the XSD parser,
* a generated sample instance validates against the schemas,
* the model round-trips through XMI with zero structural differences.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.ccts.derivation import derive_abie
from repro.ccts.model import CctsModel
from repro.instances import InstanceGenerator
from repro.interchange import diff_models
from repro.uml.association import AggregationKind
from repro.validation import validate_model
from repro.xmi import read_xmi, write_xmi
from repro.xsd.parser import parse_schema
from repro.xsd.validator import validate_instance
from repro.xsdgen import SchemaGenerator

_names = st.sampled_from(
    ["Alpha", "Beta", "Gamma", "Delta", "Epsilon", "Zeta", "Eta", "Theta"]
)
_field_names = st.sampled_from(
    ["Name", "Kind", "Count", "Created", "Reference", "Status", "Note"]
)
_mults = st.sampled_from(["1", "0..1", "1..*", "0..*"])
_narrower = {"1": ["1"], "0..1": ["0..1", "1"], "1..*": ["1..*", "1"], "0..*": ["0..*", "0..1", "1", "1..*"]}


@st.composite
def _models(draw) -> tuple[CctsModel, object, str]:
    model = CctsModel("Random")
    business = model.add_business_library("R", "urn:random")
    prims = business.add_prim_library("Prims")
    string = prims.add_primitive("String")
    decimal = prims.add_primitive("Decimal")
    cdts = business.add_cdt_library("Cdts")
    cdt_specs = draw(
        st.lists(
            st.tuples(st.sampled_from(["Text", "Code", "Amount", "Identifier"]), st.integers(0, 2)),
            min_size=1,
            max_size=3,
            unique_by=lambda spec: spec[0],
        )
    )
    cdt_wrappers = []
    for cdt_name, sup_count in cdt_specs:
        cdt = cdts.add_cdt(cdt_name)
        content = decimal if cdt_name == "Amount" else string
        cdt.set_content(content.element)
        for index in range(sup_count):
            cdt.add_supplementary(f"Sup{index}", string.element, draw(st.sampled_from(["1", "0..1"])))
        cdt_wrappers.append(cdt)

    ccs = business.add_cc_library("Ccs")
    acc_names = draw(st.lists(_names, min_size=1, max_size=4, unique=True))
    accs = []
    for acc_name in acc_names:
        acc = ccs.add_acc(acc_name)
        field_count = draw(st.integers(1, 3))
        fields = draw(st.lists(_field_names, min_size=field_count, max_size=field_count, unique=True))
        for field in fields:
            acc.add_bcc(field, draw(st.sampled_from(cdt_wrappers)), draw(_mults))
        accs.append(acc)
    # Random ASCCs, only "forward" so composition chains terminate.
    for index, acc in enumerate(accs):
        for target in accs[index + 1:]:
            if draw(st.booleans()):
                acc.add_ascc(
                    f"Linked{target.name}",
                    target,
                    draw(_mults),
                    draw(st.sampled_from([AggregationKind.COMPOSITE, AggregationKind.SHARED])),
                )

    bies = business.add_bie_library("Bies")
    abies = {}
    for acc in reversed(accs):  # targets first so ASBIEs can be wired
        derivation = derive_abie(bies, acc, qualifier="R")
        for bcc in acc.bccs:
            if draw(st.booleans()) or not abies:
                derivation.include(bcc.name, draw(st.sampled_from(_narrower[str(bcc.multiplicity)])))
        if not derivation.abie.bbies and acc.bccs:
            derivation.include(acc.bccs[0].name)
        for ascc in acc.asccs:
            target_abie = abies.get(ascc.target.name)
            if target_abie is not None and draw(st.booleans()):
                derivation.connect(ascc.role, target_abie, based_on=ascc)
        abies[acc.name] = derivation.abie

    doc = business.add_doc_library("Doc")
    root_derivation = derive_abie(doc, accs[0], name="Root")
    if accs[0].bccs:
        root_derivation.include(accs[0].bccs[0].name)
    root_derivation.connect("Main", abies[accs[0].name], "1")
    return model, doc, "Root"


_pipeline_settings = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


class TestRandomModels:
    @_pipeline_settings
    @given(_models())
    def test_random_models_validate_clean(self, built):
        model, _, _ = built
        report = validate_model(model)
        assert report.ok, str(report)

    @_pipeline_settings
    @given(_models())
    def test_generation_succeeds_and_is_deterministic(self, built):
        model, doc, root = built
        first = SchemaGenerator(model).generate(doc, root=root)
        second = SchemaGenerator(model).generate(doc, root=root)
        assert {u: g.to_string() for u, g in first.schemas.items()} == {
            u: g.to_string() for u, g in second.schemas.items()
        }

    @_pipeline_settings
    @given(_models())
    def test_generated_schemas_parse_back_identically(self, built):
        model, doc, root = built
        result = SchemaGenerator(model).generate(doc, root=root)
        from repro.xsd.writer import schema_to_string

        for generated in result.schemas.values():
            text = generated.to_string()
            assert schema_to_string(parse_schema(text)) == text

    @_pipeline_settings
    @given(_models())
    def test_instances_validate_against_generated_schemas(self, built):
        model, doc, root = built
        result = SchemaGenerator(model).generate(doc, root=root)
        schema_set = result.schema_set()
        document = InstanceGenerator(schema_set).generate(root)
        assert validate_instance(schema_set, document) == []

    @_pipeline_settings
    @given(_models())
    def test_xmi_round_trip_lossless(self, built):
        model, _, _ = built
        reloaded = CctsModel(model=read_xmi(write_xmi(model.model)))
        assert diff_models(model, reloaded) == []


class TestRandomModelExtensions:
    @_pipeline_settings
    @given(_models())
    def test_reverse_engineering_round_trip(self, built):
        from repro.reverse import reverse_engineer

        model, doc, root = built
        result = SchemaGenerator(model).generate(doc, root=root)
        report = reverse_engineer(result.schema_set())
        assert validate_model(report.model).ok
        doc_library = report.model.library_named(report.doc_library_names[0])
        regenerated = SchemaGenerator(report.model).generate(
            doc_library, root=report.root_elements[0]
        )
        message = InstanceGenerator(result.schema_set()).generate(root)
        assert validate_instance(regenerated.schema_set(), message) == []

    @_pipeline_settings
    @given(_models())
    def test_binding_round_trip_on_generated_instances(self, built):
        from repro.binding import marshal, unmarshal

        model, doc, root = built
        schema_set = SchemaGenerator(model).generate(doc, root=root).schema_set()
        document = InstanceGenerator(schema_set).generate(root)
        data = unmarshal(schema_set, document)
        remarshalled = marshal(schema_set, root, data)
        assert unmarshal(schema_set, remarshalled) == data

    @_pipeline_settings
    @given(_models())
    def test_rng_engine_agrees_on_random_models(self, built):
        from repro.instances import drop_required_child
        from repro.rngen import RngValidator, compile_grammar, result_to_rng

        model, doc, root = built
        result = SchemaGenerator(model).generate(doc, root=root)
        schema_set = result.schema_set()
        rng = RngValidator(compile_grammar(result_to_rng(result, root)))
        valid = InstanceGenerator(schema_set).generate(root)
        assert rng.validate(valid) == (validate_instance(schema_set, valid) == [])
        mutated = InstanceGenerator(schema_set).generate(root)
        # Drop the first required child anywhere, if one exists.
        required = next(
            (el.name for g in result.schemas.values()
             for ct in g.schema.complex_types if ct.particle
             for el in ct.particle.particles
             if getattr(el, "min_occurs", 0) >= 1 and getattr(el, "name", None)),
            None,
        )
        if required is not None and drop_required_child(mutated, required):
            assert rng.validate(mutated) == (validate_instance(schema_set, mutated) == [])
