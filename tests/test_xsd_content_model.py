"""Unit and property tests for content-model matching (NFA vs backtracking)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.xmlutil.qname import QName
from repro.xsd.components import ChoiceGroup, ElementDecl, SequenceGroup
from repro.xsd.content_model import CompiledModel, match_backtracking, match_nfa


def _q(name: str) -> QName:
    return QName("urn:t", name)


def _symbol(decl: ElementDecl) -> QName:
    return _q(decl.name) if decl.name else decl.ref


def _el(name: str, lo: int = 1, hi: int | None = 1) -> ElementDecl:
    return ElementDecl(name=name, min_occurs=lo, max_occurs=hi)


ENGINES = [match_nfa, match_backtracking]


@pytest.mark.parametrize("match", ENGINES)
class TestBothEngines:
    def test_exact_sequence(self, match):
        model = SequenceGroup([_el("a"), _el("b")])
        assert match(model, [_q("a"), _q("b")], _symbol).ok
        assert not match(model, [_q("b"), _q("a")], _symbol).ok
        assert not match(model, [_q("a")], _symbol).ok
        assert not match(model, [_q("a"), _q("b"), _q("b")], _symbol).ok

    def test_optional_element(self, match):
        model = SequenceGroup([_el("a", 0), _el("b")])
        assert match(model, [_q("b")], _symbol).ok
        assert match(model, [_q("a"), _q("b")], _symbol).ok

    def test_unbounded(self, match):
        model = SequenceGroup([_el("a", 0, None)])
        for count in (0, 1, 5, 70):
            assert match(model, [_q("a")] * count, _symbol).ok

    def test_bounded_range(self, match):
        model = SequenceGroup([_el("a", 2, 4)])
        assert not match(model, [_q("a")], _symbol).ok
        assert match(model, [_q("a")] * 2, _symbol).ok
        assert match(model, [_q("a")] * 4, _symbol).ok
        assert not match(model, [_q("a")] * 5, _symbol).ok

    def test_choice(self, match):
        model = ChoiceGroup([_el("a"), _el("b")])
        assert match(model, [_q("a")], _symbol).ok
        assert match(model, [_q("b")], _symbol).ok
        assert not match(model, [_q("a"), _q("b")], _symbol).ok
        assert not match(model, [], _symbol).ok

    def test_repeated_choice(self, match):
        model = ChoiceGroup([_el("a"), _el("b")], min_occurs=0, max_occurs=None)
        assert match(model, [_q("a"), _q("b"), _q("a")], _symbol).ok
        assert match(model, [], _symbol).ok

    def test_nested_groups(self, match):
        inner = SequenceGroup([_el("x"), _el("y")], min_occurs=0, max_occurs=2)
        model = SequenceGroup([_el("a"), inner, _el("b")])
        assert match(model, [_q("a"), _q("b")], _symbol).ok
        assert match(model, [_q("a"), _q("x"), _q("y"), _q("b")], _symbol).ok
        assert match(model, [_q("a"), _q("x"), _q("y"), _q("x"), _q("y"), _q("b")], _symbol).ok
        assert not match(model, [_q("a"), _q("x"), _q("b")], _symbol).ok

    def test_empty_sequence_matches_empty(self, match):
        assert match(SequenceGroup([]), [], _symbol).ok
        assert not match(SequenceGroup([]), [_q("a")], _symbol).ok

    def test_assignments_identify_declarations(self, match):
        a, b = _el("a", 0, None), _el("b")
        model = SequenceGroup([a, b])
        result = match(model, [_q("a"), _q("a"), _q("b")], _symbol)
        assert result.ok
        assert result.assignments == [a, a, b]

    def test_element_particle_directly(self, match):
        assert match(_el("a", 1, 3), [_q("a"), _q("a")], _symbol).ok
        assert not match(_el("a", 1, 3), [], _symbol).ok

    def test_prohibited_particle(self, match):
        model = SequenceGroup([_el("a", 0, 0), _el("b")])
        assert match(model, [_q("b")], _symbol).ok
        assert not match(model, [_q("a"), _q("b")], _symbol).ok


class TestNfaDetails:
    def test_failure_reports_expected_names(self):
        model = SequenceGroup([_el("a"), _el("b")])
        result = match_nfa(model, [_q("a"), _q("z")], _symbol)
        assert not result.ok
        assert result.failure_index == 1
        assert result.expected == ("b",)
        assert "child #2" in result.describe_failure()

    def test_failure_at_end_of_content(self):
        model = SequenceGroup([_el("a"), _el("b")])
        result = match_nfa(model, [_q("a")], _symbol)
        assert not result.ok
        assert result.failure_index is None
        assert "end of content" in result.describe_failure()

    def test_compiled_model_is_reusable(self):
        model = SequenceGroup([_el("a", 0, None)])
        compiled = CompiledModel(model, _symbol)
        assert compiled.match([_q("a")] * 3).ok
        assert compiled.match([]).ok
        assert not compiled.match([_q("b")]).ok

    def test_large_bounded_treated_as_unbounded(self):
        model = SequenceGroup([_el("a", 0, 1000)])
        assert match_nfa(model, [_q("a")] * 200, _symbol).ok


_names = st.sampled_from(["a", "b", "c"])
_occurs = st.sampled_from([(1, 1), (0, 1), (0, None), (1, None), (2, 3), (0, 2)])


@st.composite
def _particles(draw, depth=0):
    lo, hi = draw(_occurs)
    if depth >= 2 or draw(st.booleans()):
        return ElementDecl(name=draw(_names), min_occurs=lo, max_occurs=hi)
    children = draw(st.lists(_particles(depth=depth + 1), min_size=1, max_size=3))
    group_type = draw(st.sampled_from([SequenceGroup, ChoiceGroup]))
    return group_type(children, lo, hi)


class TestEngineEquivalence:
    @settings(max_examples=200, deadline=None)
    @given(_particles(), st.lists(_names, max_size=6))
    def test_nfa_agrees_with_backtracking(self, particle, names):
        tokens = [_q(name) for name in names]
        nfa = match_nfa(particle, tokens, _symbol)
        reference = match_backtracking(particle, tokens, _symbol)
        assert nfa.ok == reference.ok

    @settings(max_examples=100, deadline=None)
    @given(_particles(), st.lists(_names, max_size=6))
    def test_successful_assignments_cover_all_tokens(self, particle, names):
        tokens = [_q(name) for name in names]
        result = match_nfa(particle, tokens, _symbol)
        if result.ok:
            assert len(result.assignments) == len(tokens)
            for token, decl in zip(tokens, result.assignments):
                assert _symbol(decl) == token
