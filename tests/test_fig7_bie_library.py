"""Figure 7: the BIELibrary schema and the aggregation/composition rule."""

import pytest

from repro.xmlutil.qname import QName
from repro.xsdgen import GenerationOptions, SchemaGenerator

COMMON_NS = "urn:au:gov:vic:easybiz:data:draft:CommonAggregates"
CDT_NS = "urn:au:gov:vic:easybiz:types:draft:coredatatypes"


@pytest.fixture
def common_schema(easybiz_result):
    return easybiz_result.schemas[COMMON_NS].schema


class TestPersonIdentificationType:
    """The paper's Figure 7 fragment, line by line."""

    def test_global_assigned_address_declared(self, common_schema):
        shared = common_schema.global_element("AssignedAddress")
        assert shared.type == QName(COMMON_NS, "AddressType")

    def test_global_element_precedes_its_user(self, common_schema):
        names = [
            getattr(item, "name", None)
            for item in common_schema.items
        ]
        assert names.index("AssignedAddress") < names.index("Person_IdentificationType")

    def test_sequence_matches_figure7(self, common_schema):
        particles = common_schema.complex_type("Person_IdentificationType").particle.particles
        # Line 24: Designation, typed by the Identifier data type.
        assert particles[0].name == "Designation"
        assert particles[0].type == QName(CDT_NS, "IdentifierType")
        # Line 25: composition-connected ASBIE is inlined.
        assert particles[1].name == "PersonalSignature"
        assert particles[1].type == QName(COMMON_NS, "SignatureType")
        # Line 26: shared-aggregation ASBIE is a ref to the global element.
        assert particles[2].is_ref
        assert particles[2].ref == QName(COMMON_NS, "AssignedAddress")

    def test_rendered_fragment_contains_figure7_lines(self, easybiz_result):
        text = easybiz_result.schemas[COMMON_NS].to_string()
        assert '<xsd:element name="AssignedAddress" type="commonAggregates:AddressType"/>' in text
        assert '<xsd:complexType name="Person_IdentificationType">' in text
        assert '<xsd:element ref="commonAggregates:AssignedAddress"/>' in text
        assert '<xsd:element name="PersonalSignature" type="commonAggregates:SignatureType"/>' in text


class TestBieLibraryShape:
    def test_every_abie_gets_a_complex_type(self, common_schema):
        names = {ct.name for ct in common_schema.complex_types}
        assert names == {
            "SignatureType", "AddressType", "Person_IdentificationType",
            "ApplicationType", "AttachmentType",
        }

    def test_application_restriction_kept_two_bbies(self, common_schema):
        # "Of the initially eleven basic core components ... only two are
        # actually used" (paper section 3).
        particles = common_schema.complex_type("ApplicationType").particle.particles
        assert [p.name for p in particles] == ["CreatedDate", "Type"]

    def test_address_uses_qualified_data_type(self, common_schema):
        particles = common_schema.complex_type("AddressType").particle.particles
        assert particles[0].name == "CountryName"
        assert particles[0].type.local == "CountryTypeType"

    def test_no_root_element_in_bie_library(self, common_schema):
        # Only the shared-aggregation global element exists; a BIELibrary
        # defines no document root.
        assert [el.name for el in common_schema.global_elements] == ["AssignedAddress"]


class TestInlineAblation:
    """The DESIGN.md ablation: inline every ASBIE instead of global + ref."""

    def test_inline_option_removes_globals(self, easybiz):
        options = GenerationOptions(shared_aggregation_as_ref=False)
        result = SchemaGenerator(easybiz.model, options).generate(
            easybiz.doc_library, root="HoardingPermit"
        )
        schema = result.schemas[COMMON_NS].schema
        assert schema.global_elements == []
        particles = schema.complex_type("Person_IdentificationType").particle.particles
        assert particles[2].name == "AssignedAddress"
        assert not particles[2].is_ref
        assert particles[2].type == QName(COMMON_NS, "AddressType")

    def test_inline_option_still_validates_instances(self, easybiz):
        from repro.instances import InstanceGenerator
        from repro.xsd.validator import validate_instance

        options = GenerationOptions(shared_aggregation_as_ref=False)
        result = SchemaGenerator(easybiz.model, options).generate(
            easybiz.doc_library, root="HoardingPermit"
        )
        schema_set = result.schema_set()
        document = InstanceGenerator(schema_set).generate("HoardingPermit")
        assert validate_instance(schema_set, document) == []
