"""The approved CDT catalog and the e-commerce model."""

import pytest

from repro.catalog.cdts import PAPER_CDTS, STANDARD_CDTS
from repro.validation import validate_model
from repro.xsdgen import SchemaGenerator
from repro.xsdgen.primitives import builtin_for_primitive_name, builtin_or_string


class TestStandardCatalog:
    def test_twenty_approved_cdts(self):
        assert len(STANDARD_CDTS) == 20

    def test_ten_cct_families_covered(self):
        names = {name for name, _, _ in STANDARD_CDTS}
        assert {"Amount", "BinaryObject", "Code", "DateTime", "Identifier",
                "Indicator", "Measure", "Numeric", "Quantity", "Text"} <= names

    def test_every_cdt_builds_with_content_and_sups(self, ecommerce):
        cdt_library = ecommerce.model.cdt_libraries()[0]
        assert len(cdt_library.cdts) == len(STANDARD_CDTS)
        for cdt in cdt_library.cdts:
            assert cdt.content_component is not None

    def test_amount_carries_currency_sups(self, ecommerce):
        cdt_library = ecommerce.model.cdt_libraries()[0]
        amount = cdt_library.cdt("Amount")
        assert [s.name for s in amount.supplementary_components] == [
            "AmountCurrencyIdentificationCode",
            "AmountCurrencyCodeListVersionIdentifier",
        ]

    def test_paper_catalog_is_reduced_code_shape(self):
        code = next(spec for spec in PAPER_CDTS if spec[0] == "Code")
        assert [sup[0] for sup in code[2]] == [
            "CodeListAgName", "CodeListName", "CodeListSchemeURI", "LanguageIdentifier",
        ]


class TestPrimitiveMapping:
    @pytest.mark.parametrize(
        "name,local",
        [
            ("String", "string"),
            ("Integer", "integer"),
            ("Boolean", "boolean"),
            ("Decimal", "decimal"),
            ("Binary", "base64Binary"),
            ("Date", "date"),
            ("DateTime", "dateTime"),
        ],
    )
    def test_known_mappings(self, name, local):
        assert builtin_for_primitive_name(name).local == local

    def test_unknown_returns_none(self):
        assert builtin_for_primitive_name("Quaternion") is None

    def test_fallback_is_string(self):
        assert builtin_or_string("Quaternion").local == "string"


class TestEcommerceModel:
    def test_validates_clean(self, ecommerce):
        assert validate_model(ecommerce.model).ok

    def test_purchase_order_structure(self, ecommerce):
        order = ecommerce.purchase_order
        assert order.name == "PurchaseOrder"
        assert [a.role for a in order.asbies] == ["Buyer", "Seller", "Ordered"]
        ordered = order.asbie("Ordered")
        assert str(ordered.multiplicity) == "1..*"

    def test_generation_end_to_end(self, ecommerce):
        from repro.instances import InstanceGenerator
        from repro.xsd.validator import validate_instance

        result = SchemaGenerator(ecommerce.model).generate(
            ecommerce.doc_library, root="PurchaseOrder"
        )
        assert len(result.schemas) == 5
        schema_set = result.schema_set()
        document = InstanceGenerator(schema_set).generate("PurchaseOrder")
        assert validate_instance(schema_set, document) == []

    def test_currency_enum_enforced(self, ecommerce):
        from repro.instances import InstanceGenerator, corrupt_enumeration_value
        from repro.xsd.validator import validate_instance

        result = SchemaGenerator(ecommerce.model).generate(
            ecommerce.doc_library, root="PurchaseOrder"
        )
        schema_set = result.schema_set()
        document = InstanceGenerator(schema_set).generate("PurchaseOrder")
        corrupt_enumeration_value(document, "Currency", "BTC")
        problems = validate_instance(schema_set, document)
        assert any("BTC" in p.message for p in problems)
