"""W3C trace-context header parsing, rendering, and ambient propagation."""

from __future__ import annotations

import contextvars
import threading

import pytest

from repro.obs.propagation import (
    TraceContext,
    current_trace_context,
    new_span_id,
    new_trace_id,
    parse_traceparent,
    parse_tracestate,
    render_traceparent,
    render_tracestate,
    use_trace_context,
)

TRACE = "4bf92f3577b34da6a3ce929d0e0e4736"
PARENT = "00f067aa0ba902b7"


class TestTraceparentParse:
    def test_canonical_header_round_trips(self):
        header = f"00-{TRACE}-{PARENT}-01"
        ctx = parse_traceparent(header)
        assert ctx is not None
        assert ctx.trace_id == TRACE
        assert ctx.parent_id == PARENT
        assert ctx.sampled is True
        assert render_traceparent(ctx) == header

    def test_unsampled_flag(self):
        ctx = parse_traceparent(f"00-{TRACE}-{PARENT}-00")
        assert ctx is not None and ctx.sampled is False
        assert render_traceparent(ctx).endswith("-00")

    def test_surrounding_whitespace_tolerated(self):
        assert parse_traceparent(f"  00-{TRACE}-{PARENT}-01 ") is not None

    @pytest.mark.parametrize(
        "header",
        [
            None,
            "",
            "00",
            f"00-{TRACE}-{PARENT}",  # missing flags
            f"00-{TRACE[:-1]}-{PARENT}-01",  # short trace id
            f"00-{TRACE}Z-{PARENT}-01",  # non-hex
            f"00-{TRACE.upper()}-{PARENT}-01",  # uppercase forbidden
            f"00-{'0' * 32}-{PARENT}-01",  # all-zero trace id
            f"00-{TRACE}-{'0' * 16}-01",  # all-zero parent id
            f"ff-{TRACE}-{PARENT}-01",  # version ff invalid
            f"00-{TRACE}-{PARENT}-01-extra",  # v00 admits no extra fields
            f"0-{TRACE}-{PARENT}-01",  # short version
        ],
    )
    def test_rejects_malformed(self, header):
        assert parse_traceparent(header) is None

    def test_future_version_with_extra_fields_parses(self):
        ctx = parse_traceparent(f"cc-{TRACE}-{PARENT}-01-what-the-future-holds")
        assert ctx is not None
        assert ctx.trace_id == TRACE

    def test_unknown_flag_bits_only_sampled_is_read(self):
        ctx = parse_traceparent(f"00-{TRACE}-{PARENT}-fe")
        assert ctx is not None and ctx.sampled is False
        ctx = parse_traceparent(f"00-{TRACE}-{PARENT}-ff")
        assert ctx is not None and ctx.sampled is True


class TestTracestate:
    def test_ordered_entries_round_trip(self):
        header = "rojo=00f067aa0ba902b7,congo=t61rcWkgMzE"
        entries = parse_tracestate(header)
        assert entries == (("rojo", "00f067aa0ba902b7"), ("congo", "t61rcWkgMzE"))
        assert render_tracestate(entries) == header

    def test_empty_and_malformed_members_dropped(self):
        entries = parse_tracestate("a=1,, ,BAD=2,c,=x,d=4")
        assert entries == (("a", "1"), ("d", "4"))

    def test_duplicate_keys_keep_first(self):
        assert parse_tracestate("a=1,a=2") == (("a", "1"),)

    def test_vendor_tenant_keys_accepted(self):
        assert parse_tracestate("tenant@vendor=ok") == (("tenant@vendor", "ok"),)

    def test_entry_count_bounded(self):
        header = ",".join(f"k{i}=v" for i in range(64))
        assert len(parse_tracestate(header)) == 32

    def test_none_and_empty(self):
        assert parse_tracestate(None) == ()
        assert parse_tracestate("") == ()
        assert render_tracestate(()) == ""


class TestIds:
    def test_shapes(self):
        assert len(new_trace_id()) == 32
        assert len(new_span_id()) == 16
        int(new_trace_id(), 16)
        int(new_span_id(), 16)

    def test_randomness(self):
        assert len({new_trace_id() for _ in range(64)}) == 64


class TestTraceContext:
    def test_new_and_child(self):
        ctx = TraceContext.new()
        child = ctx.child()
        assert child.trace_id == ctx.trace_id
        assert child.parent_id != ctx.parent_id
        assert parse_traceparent(ctx.to_traceparent()) == TraceContext(
            trace_id=ctx.trace_id, parent_id=ctx.parent_id, sampled=True
        )


class TestAmbientContext:
    def test_default_is_none(self):
        assert current_trace_context() is None

    def test_use_sets_and_restores(self):
        ctx = TraceContext.new()
        with use_trace_context(ctx) as active:
            assert active is ctx
            assert current_trace_context() is ctx
        assert current_trace_context() is None

    def test_survives_copy_context_thread_hop(self):
        """The same hop the serve worker pool does: snapshot + run in thread."""
        ctx = TraceContext.new()
        seen: list[TraceContext | None] = []
        with use_trace_context(ctx):
            snapshot = contextvars.copy_context()
        thread = threading.Thread(target=lambda: seen.append(snapshot.run(current_trace_context)))
        thread.start()
        thread.join()
        assert seen == [ctx]
