"""Edge cases across layers: recursion, empty inputs, error paths."""

import pytest

from repro.ccts.model import CctsModel
from repro.errors import GenerationError, SchemaError
from repro.uml.association import AggregationKind
from repro.xsdgen import GenerationOptions, SchemaGenerator


def _recursive_model():
    """Person -optionally-> Person: legal, generates a recursive schema."""
    from repro.catalog.primitives import add_standard_prim_library
    from repro.ccts.derivation import derive_abie

    model = CctsModel("Recursive")
    business = model.add_business_library("B", "urn:recursive")
    prims = add_standard_prim_library(business)
    string = prims.primitive("String").element
    cdts = business.add_cdt_library("Cdts")
    text = cdts.add_cdt("Text")
    text.set_content(string)
    ccs = business.add_cc_library("Ccs")
    person = ccs.add_acc("Person")
    person.add_bcc("Name", text, "1")
    person.add_ascc("Supervisor", person, "0..1", AggregationKind.COMPOSITE)
    doc = business.add_doc_library("People")
    derivation = derive_abie(doc, person)
    derivation.include("Name")
    derivation.connect("Supervisor", derivation.abie, "0..1", based_on="Supervisor")
    return model, doc


class TestRecursiveModels:
    def test_recursive_schema_generates(self):
        model, doc = _recursive_model()
        result = SchemaGenerator(model).generate(doc, root="Person")
        schema = result.root.schema
        particles = schema.complex_type("PersonType").particle.particles
        assert particles[1].name == "SupervisorPerson"
        assert particles[1].type.local == "PersonType"

    def test_recursive_instances_bounded_by_max_depth(self):
        from repro.instances import InstanceGenerator
        from repro.xsd.validator import validate_instance

        model, doc = _recursive_model()
        result = SchemaGenerator(model).generate(doc, root="Person")
        schema_set = result.schema_set()
        generator = InstanceGenerator(schema_set, max_depth=6)
        document = generator.generate("Person")
        assert validate_instance(schema_set, document) == []
        # Count the nesting depth actually produced.
        depth = 0
        node = document
        while True:
            nested = [c for c in node.element_children if c.tag.endswith("SupervisorPerson")]
            if not nested:
                break
            node = nested[0]
            depth += 1
        # The cut triggers once depth exceeds max_depth: at most one extra level.
        assert 0 < depth <= 7

    def test_required_infinite_recursion_rejected(self):
        from repro.catalog.primitives import add_standard_prim_library
        from repro.ccts.derivation import derive_abie
        from repro.instances import InstanceGenerator

        model = CctsModel("Doom")
        business = model.add_business_library("B", "urn:doom")
        prims = add_standard_prim_library(business)
        string = prims.primitive("String").element
        cdts = business.add_cdt_library("Cdts")
        text = cdts.add_cdt("Text")
        text.set_content(string)
        ccs = business.add_cc_library("Ccs")
        node = ccs.add_acc("Node")
        node.add_bcc("Label", text, "1")
        node.add_ascc("Child", node, "1", AggregationKind.COMPOSITE)  # mandatory!
        doc = business.add_doc_library("Docs")
        derivation = derive_abie(doc, node)
        derivation.include("Label")
        derivation.connect("Child", derivation.abie, "1", based_on="Child")
        result = SchemaGenerator(model).generate(doc, root="Node")
        with pytest.raises(SchemaError, match="recursion"):
            InstanceGenerator(result.schema_set()).generate("Node")

    def test_recursive_model_validation_warns_on_cycle(self):
        from repro.validation import validate_model

        model, _ = _recursive_model()
        report = validate_model(model)
        assert report.ok
        assert any(d.code == "UPCC-C05" for d in report.warnings)


class TestGeneratorErrorPaths:
    def test_untyped_bbie_aborts_generation(self):
        model = CctsModel("Untyped")
        business = model.add_business_library("B", "urn:untyped")
        ccs = business.add_cc_library("Ccs")
        acc = ccs.add_acc("Thing")
        bies = business.add_bie_library("Bies")
        abie = bies.add_abie("Thing")
        bies.package.add_dependency(abie.element, acc.element, stereotype="basedOn")
        abie.element.add_attribute("Mystery", None, "1", stereotype="BBIE")
        generator = SchemaGenerator(model, GenerationOptions(validate_first=False))
        with pytest.raises(GenerationError):
            generator.generate(bies)

    def test_homeless_type_aborts_generation(self):
        from repro.catalog.primitives import add_standard_prim_library

        model = CctsModel("Homeless")
        business = model.add_business_library("B", "urn:homeless")
        prims = add_standard_prim_library(business)
        string = prims.primitive("String").element
        # A CDT living in a plain (non-library) package.
        loose = model.model.add_package("Loose")
        stray = loose.add_data_type("Stray", stereotype="CDT")
        stray.add_attribute("Content", string, "1", stereotype="CON")
        ccs = business.add_cc_library("Ccs")
        acc = ccs.add_acc("Thing")
        from repro.ccts.data_types import CoreDataType

        acc.add_bcc("Field", CoreDataType(stray, model.model), "1")
        bies = business.add_bie_library("Bies")
        from repro.ccts.derivation import derive_abie

        derivation = derive_abie(bies, acc)
        derivation.include("Field")
        generator = SchemaGenerator(model, GenerationOptions(validate_first=False))
        with pytest.raises(GenerationError, match="not owned by any library"):
            generator.generate(bies)


class TestEmptyInputs:
    def test_empty_bie_library_generates_empty_schema(self):
        model = CctsModel("Empty")
        business = model.add_business_library("B", "urn:empty")
        bies = business.add_bie_library("Nothing")
        result = SchemaGenerator(model).generate(bies)
        assert result.root.schema.items == []

    def test_schema_set_from_empty_directory(self, tmp_path):
        from repro.xsd.validator import SchemaSet

        schema_set = SchemaSet.from_directory(tmp_path)
        assert schema_set.namespaces == []

    def test_validate_against_empty_schema_set(self):
        from repro.xsd.validator import SchemaSet, validate_instance

        problems = validate_instance(SchemaSet(), "<a/>")
        assert problems and "no global element" in problems[0].message

    def test_empty_model_validates(self):
        from repro.validation import validate_model

        assert validate_model(CctsModel("Nothing")).ok

    def test_diff_of_empty_models(self):
        from repro.interchange import diff_models

        assert diff_models(CctsModel("A"), CctsModel("B")) == []


class TestDeepNesting:
    def test_fifteen_level_composition_chain(self):
        from repro.catalog.primitives import add_standard_prim_library
        from repro.ccts.derivation import derive_abie
        from repro.instances import InstanceGenerator
        from repro.xsd.validator import validate_instance

        model = CctsModel("Deep")
        business = model.add_business_library("B", "urn:deep")
        prims = add_standard_prim_library(business)
        string = prims.primitive("String").element
        cdts = business.add_cdt_library("Cdts")
        text = cdts.add_cdt("Text")
        text.set_content(string)
        ccs = business.add_cc_library("Ccs")
        accs = [ccs.add_acc(f"Level{i}") for i in range(15)]
        for acc in accs:
            acc.add_bcc("Label", text, "0..1")
        for parent, child in zip(accs, accs[1:]):
            parent.add_ascc("Next", child, "1")
        bies = business.add_bie_library("Bies")
        abies = []
        for acc in reversed(accs):
            derivation = derive_abie(bies, acc)
            derivation.include("Label", "0..1")
            if abies:
                derivation.connect("Next", abies[-1], based_on="Next")
            abies.append(derivation.abie)
        doc = business.add_doc_library("Doc")
        root = derive_abie(doc, accs[0], name="Chain")
        root.connect("Top", abies[-1], "1")
        result = SchemaGenerator(model).generate(doc, root="Chain")
        schema_set = result.schema_set()
        document = InstanceGenerator(schema_set).generate("Chain")
        assert validate_instance(schema_set, document) == []
